package httpapi

import (
	"context"
	"net/http"
	"strings"
)

// routeParam documents one request parameter in the route manifest.
type routeParam struct {
	Name string `json:"name"`
	// In is where the parameter travels: "query", "path" or "body".
	In  string `json:"in"`
	Doc string `json:"doc,omitempty"`
}

// routeDef couples one route's registration with its manifest entry,
// so the served surface and the machine-readable description cannot
// drift apart: both are generated from this table.
type routeDef struct {
	Method  string
	Path    string // relative to the version prefix, e.g. "/search"
	Doc     string
	Params  []routeParam
	handler http.HandlerFunc
}

// ManifestRoute is one row of the GET /api/v1 route manifest.
type ManifestRoute struct {
	Method     string       `json:"method"`
	Path       string       `json:"path"`
	Doc        string       `json:"doc,omitempty"`
	Params     []routeParam `json:"params,omitempty"`
	Deprecated bool         `json:"deprecated"`
	// Successor names the route to migrate to (deprecated rows only).
	Successor string `json:"successor,omitempty"`
}

// qp / pp / bp build query-, path- and body-parameter docs tersely.
func qp(name, doc string) routeParam { return routeParam{Name: name, In: "query", Doc: doc} }
func pp(name, doc string) routeParam { return routeParam{Name: name, In: "path", Doc: doc} }
func bp(name, doc string) routeParam { return routeParam{Name: name, In: "body", Doc: doc} }

// addRoute appends one route to the server's table (mounted later by
// mountRoutes).
func (s *Server) addRoute(method, path, doc string, params []routeParam, h http.HandlerFunc) {
	s.routes = append(s.routes, routeDef{Method: method, Path: path, Doc: doc, Params: params, handler: h})
}

// mountRoutes registers every table entry under the versioned surface
// (/api/v1/...) and — only when Config.LegacyAPI opts in — under the
// retired un-versioned alias (/api/...), which then responds with an
// RFC 9745 Deprecation header plus a Link to its successor-version so
// clients can migrate mechanically. The manifest endpoint GET /api/v1
// is mounted alongside, generated from the same table.
func (s *Server) mountRoutes() {
	for _, rd := range s.routes {
		h := rd.handler
		s.mux.HandleFunc(rd.Method+" /api/v1"+rd.Path, func(w http.ResponseWriter, r *http.Request) {
			h(w, r.WithContext(context.WithValue(r.Context(), ctxKeyV1, true)))
		})
		if s.cfg.LegacyAPI {
			s.mux.HandleFunc(rd.Method+" /api"+rd.Path, func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Deprecation", "true")
				w.Header().Set("Link", "</api/v1"+strings.TrimPrefix(r.URL.Path, "/api")+`>; rel="successor-version"`)
				h(w, r)
			})
		}
	}
	s.mux.HandleFunc("GET /api/v1", s.handleManifest)
	s.mux.HandleFunc("GET /api/v1/{$}", s.handleManifest)
}

// handleManifest serves GET /api/v1: the machine-readable description
// of the HTTP surface — method, path, parameters and deprecation
// status per route — so clients discover the API instead of guessing
// it. Legacy aliases appear only while -legacy-api keeps them mounted,
// each marked deprecated with its successor route.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	routes := make([]ManifestRoute, 0, 2*len(s.routes))
	for _, rd := range s.routes {
		routes = append(routes, ManifestRoute{
			Method: rd.Method,
			Path:   "/api/v1" + rd.Path,
			Doc:    rd.Doc,
			Params: rd.Params,
		})
	}
	if s.cfg.LegacyAPI {
		for _, rd := range s.routes {
			routes = append(routes, ManifestRoute{
				Method:     rd.Method,
				Path:       "/api" + rd.Path,
				Doc:        rd.Doc,
				Params:     rd.Params,
				Deprecated: true,
				Successor:  "/api/v1" + rd.Path,
			})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"service":    "xfrag",
		"version":    "v1",
		"legacy_api": s.cfg.LegacyAPI,
		"routes":     routes,
	})
}
