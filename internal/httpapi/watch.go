package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/standing"
)

// maxLongPollWait caps the ?wait= hold time of the long-poll fallback
// so a forgotten client cannot pin a handler goroutine forever.
const maxLongPollWait = 30 * time.Second

// sseHeartbeat is how often an idle SSE stream emits a comment line so
// intermediaries do not reap the connection.
const sseHeartbeat = 15 * time.Second

// WatchRequest is the body of POST /api/v1/watch.
type WatchRequest struct {
	Query    string `json:"query"`
	Filter   string `json:"filter,omitempty"`
	Strategy string `json:"strategy,omitempty"`
}

// WatchInfo describes one subscription in list/create responses.
type WatchInfo struct {
	ID       string `json:"id"`
	Query    string `json:"query"`
	Filter   string `json:"filter,omitempty"`
	Strategy string `json:"strategy"`
	Seq      uint64 `json:"seq"`
	Matches  int    `json:"matches"`
	Created  string `json:"created"`
}

func watchInfo(sub *standing.Subscription) WatchInfo {
	return WatchInfo{
		ID:       sub.ID(),
		Query:    sub.Keywords(),
		Filter:   sub.Filter(),
		Strategy: sub.Strategy(),
		Seq:      sub.Seq(),
		Matches:  sub.Matches(),
		Created:  sub.Created().UTC().Format(time.RFC3339),
	}
}

// wantsSSE reports whether the client asked for a Server-Sent Events
// stream.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// streamError writes an error in the flavor the client is consuming:
// the standard v1 envelope as a terminal SSE `error` event on streams,
// plain JSON otherwise — one error shape across the whole surface.
func (s *Server) streamError(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	if !wantsSSE(r) {
		s.error(w, r, status, code, err)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(status)
	writeSSEError(w, code, err.Error(), w.Header().Get(RequestIDHeader))
}

// writeSSEError emits the uniform error envelope as one SSE event.
func writeSSEError(w http.ResponseWriter, code, message, requestID string) {
	data, _ := json.Marshal(ErrorEnvelope{Error: ErrorBody{Code: code, Message: message, RequestID: requestID}})
	fmt.Fprintf(w, "event: error\ndata: %s\n\n", data)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// handleWatchCreate serves POST /api/v1/watch: compile the standing
// query, materialize its answer set, and answer 201 with the
// subscription resource (id + seq) plus the snapshot, so a client can
// render immediately and stream deltas from seq.
func (s *Server) handleWatchCreate(w http.ResponseWriter, r *http.Request) {
	var req WatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err := dec.Decode(&req); err != nil {
		s.error(w, r, http.StatusBadRequest, "bad_request", fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if req.Query == "" {
		s.error(w, r, http.StatusBadRequest, "bad_request", errors.New("need query"))
		return
	}
	opts, stratName, err := parseStrategy(req.Strategy)
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	sub, err := s.reg.Register(req.Query, req.Filter, opts, stratName)
	switch {
	case errors.Is(err, standing.ErrTooManySubscriptions):
		w.Header().Set("Retry-After", "1")
		s.error(w, r, http.StatusTooManyRequests, "subscription_limit", err)
		return
	case err != nil:
		s.error(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	hits := sub.Snapshot()
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":       sub.ID(),
		"seq":      sub.Seq(),
		"strategy": sub.Strategy(),
		"matches":  len(hits),
		"hits":     hits,
	})
}

// handleWatchList serves GET /api/v1/watch.
func (s *Server) handleWatchList(w http.ResponseWriter, _ *http.Request) {
	subs := s.reg.List()
	out := make([]WatchInfo, 0, len(subs))
	for _, sub := range subs {
		out = append(out, watchInfo(sub))
	}
	writeJSON(w, http.StatusOK, map[string]any{"subscriptions": out})
}

// handleWatchDelete serves DELETE /api/v1/watch/{id}.
func (s *Server) handleWatchDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.reg.Cancel(id) {
		s.error(w, r, http.StatusNotFound, "not_found", fmt.Errorf("no subscription %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"canceled": id})
}

// handleWatchGet serves GET /api/v1/watch/{id}: a resumable SSE stream
// when the client accepts text/event-stream, otherwise a long-poll
// JSON fallback. Both resume from ?since=seq; a resume point that has
// fallen off the bounded event ring yields a reset event carrying the
// full snapshot (and, on SSE, ends the stream so the client reconnects
// from the reset's seq).
func (s *Server) handleWatchGet(w http.ResponseWriter, r *http.Request) {
	sub, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.streamError(w, r, http.StatusNotFound, "not_found", fmt.Errorf("no subscription %q", r.PathValue("id")))
		return
	}
	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			s.streamError(w, r, http.StatusBadRequest, "bad_request", fmt.Errorf("bad since %q", v))
			return
		}
		since = n
	}
	if wantsSSE(r) {
		s.serveSSE(w, r, sub, since)
		return
	}
	s.serveLongPoll(w, r, sub, since)
}

// serveLongPoll answers one GET with the events past since — holding
// the request up to ?wait= when none are pending — or the materialized
// snapshot with ?snapshot=1.
func (s *Server) serveLongPoll(w http.ResponseWriter, r *http.Request, sub *standing.Subscription, since uint64) {
	qs := r.URL.Query()
	if qs.Get("snapshot") == "1" {
		hits := sub.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"id": sub.ID(), "seq": sub.Seq(), "matches": len(hits), "hits": hits,
		})
		return
	}
	var wait time.Duration
	if v := qs.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			s.error(w, r, http.StatusBadRequest, "bad_request", fmt.Errorf("bad wait %q (want a duration like 20s)", v))
			return
		}
		wait = min(d, maxLongPollWait)
	}
	events, seq, err := sub.EventsSince(since)
	if len(events) == 0 && err == nil && wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		events, seq, err = sub.Wait(ctx, since)
		cancel()
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			err = nil // hold expired: answer with what we have (nothing)
		}
	}
	switch {
	case errors.Is(err, standing.ErrTooOld):
		// The ring no longer reaches back to since: re-sync with a
		// synthetic reset instead of a gap the client cannot detect.
		reset := sub.SyntheticReset()
		writeJSON(w, http.StatusOK, map[string]any{
			"id": sub.ID(), "seq": reset.Seq, "events": []standing.Event{reset},
		})
		return
	case errors.Is(err, standing.ErrCanceled):
		s.error(w, r, http.StatusGone, "canceled", errors.New("subscription canceled"))
		return
	case err != nil:
		s.error(w, r, http.StatusInternalServerError, "internal", err)
		return
	}
	if events == nil {
		events = []standing.Event{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": sub.ID(), "seq": seq, "events": events})
}

// serveSSE streams the subscription over Server-Sent Events: a hello
// event naming the resume point, then one named event per delta/reset,
// each with its sequence number as the SSE id (so EventSource resumes
// natively). A consumer that falls behind the bounded ring gets one
// reset event and the stream ends — backpressure by reconnection,
// never by blocking ingest. Errors use the uniform envelope as a
// terminal `error` event.
func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, sub *standing.Subscription, since uint64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.error(w, r, http.StatusInternalServerError, "internal", errors.New("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: hello\nid: %d\ndata: {\"id\":%q,\"seq\":%d}\n\n", sub.Seq(), sub.ID(), sub.Seq())
	flusher.Flush()
	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		// Take the wakeup channel before draining so an append between
		// the drain and the select cannot be missed.
		wake := sub.NotifyCh()
		events, seq, err := sub.EventsSince(since)
		switch {
		case errors.Is(err, standing.ErrTooOld):
			// Slow consumer: the ring advanced past the resume point.
			// Re-sync with one reset and drop the connection; the
			// client reconnects with since = the reset's seq.
			writeSSEEvent(w, sub.SyntheticReset())
			flusher.Flush()
			return
		case errors.Is(err, standing.ErrCanceled):
			writeSSEError(w, "canceled", "subscription canceled", w.Header().Get(RequestIDHeader))
			return
		case err != nil:
			writeSSEError(w, "internal", err.Error(), w.Header().Get(RequestIDHeader))
			return
		}
		for _, ev := range events {
			writeSSEEvent(w, ev)
		}
		if len(events) > 0 {
			since = seq
			flusher.Flush()
		}
		select {
		case <-wake:
		case <-heartbeat.C:
			fmt.Fprint(w, ": ping\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSEEvent renders one standing event as an SSE frame: the event
// name is the delta/reset type, the SSE id is the sequence number.
func writeSSEEvent(w http.ResponseWriter, ev standing.Event) {
	data, _ := json.Marshal(ev)
	fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data)
}
