// Package httpapi exposes a collection of XML documents as a JSON
// search service — the downstream-facing surface of the library: add
// documents, run keyword/filter queries, inspect plans. Stdlib
// net/http only.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"unicode/utf8"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/query"
)

// maxSearchLimit caps the limit query parameter of GET /api/search:
// larger values get a 400 instead of an unbounded response body.
const maxSearchLimit = 1000

// Server routes HTTP requests to a collection.
type Server struct {
	coll    *collection.Collection
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in Middleware
	// maxBody bounds document uploads (bytes).
	maxBody int64
}

// New wraps a collection without an access log. Pass nil to start
// empty. Request IDs, panic recovery and HTTP metrics are still
// active; use NewWithLogger to also log requests.
func New(coll *collection.Collection) *Server {
	return NewWithLogger(coll, nil)
}

// NewWithLogger wraps a collection with the full request middleware:
// structured access logging to logger (nil disables logging only),
// request IDs, panic recovery, and HTTP metrics recorded into the
// collection's registry.
func NewWithLogger(coll *collection.Collection, logger *slog.Logger) *Server {
	if coll == nil {
		coll = collection.New()
	}
	s := &Server{coll: coll, mux: http.NewServeMux(), maxBody: 16 << 20}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/docs", s.handleListDocs)
	s.mux.HandleFunc("POST /api/docs", s.handleAddDoc)
	s.mux.HandleFunc("DELETE /api/docs/{name}", s.handleRemoveDoc)
	s.mux.HandleFunc("GET /api/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/explain", s.handleExplain)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/metrics", s.handleMetrics)
	s.handler = Middleware(s.mux, logger, coll.Metrics())
	return s
}

// Collection returns the backing collection.
func (s *Server) Collection() *collection.Collection { return s.coll }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "documents": s.coll.Len()})
}

// DocInfo describes one indexed document.
type DocInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Terms int    `json:"terms"`
}

func (s *Server) handleListDocs(w http.ResponseWriter, _ *http.Request) {
	var docs []DocInfo
	for _, name := range s.coll.Names() {
		eng := s.coll.Engine(name)
		docs = append(docs, DocInfo{
			Name:  name,
			Nodes: eng.Document().Len(),
			Terms: eng.Index().Size(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"documents": docs})
}

// AddDocRequest is the body of POST /api/docs.
type AddDocRequest struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
}

func (s *Server) handleAddDoc(w http.ResponseWriter, r *http.Request) {
	var req AddDocRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if req.Name == "" || req.XML == "" {
		writeError(w, http.StatusBadRequest, errors.New("need name and xml"))
		return
	}
	if err := s.coll.AddXML(req.Name, req.XML); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"added": req.Name})
}

func (s *Server) handleRemoveDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.coll.Remove(name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no document %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// SearchHit is one result of GET /api/search.
type SearchHit struct {
	Document string  `json:"document"`
	Nodes    []int32 `json:"nodes"`
	Root     int32   `json:"root"`
	Size     int     `json:"size"`
	Score    float64 `json:"score"`
	// Snippet is the truncated text of the fragment's nodes in
	// document order.
	Snippet string `json:"snippet,omitempty"`
}

// SearchResponse is the body of GET /api/search.
type SearchResponse struct {
	Query    string      `json:"query"`
	Filter   string      `json:"filter,omitempty"`
	Strategy string      `json:"strategy"`
	Hits     []SearchHit `json:"hits"`
	// Total counts every hit across the collection; Returned counts
	// the hits actually present in Hits after the limit.
	Total    int               `json:"total"`
	Returned int               `json:"returned"`
	Errors   map[string]string `json:"errors,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	keywords := qs.Get("q")
	if keywords == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	filterSpec := qs.Get("filter")
	opts, stratName, err := parseStrategy(qs.Get("strategy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 20
	if l := qs.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", l))
			return
		}
		if n > maxSearchLimit {
			writeError(w, http.StatusBadRequest, fmt.Errorf("limit %d exceeds maximum %d", n, maxSearchLimit))
			return
		}
		limit = n
	}
	res, err := s.coll.Search(keywords, filterSpec, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := SearchResponse{
		Query: keywords, Filter: filterSpec, Strategy: stratName,
		Total: len(res.Hits),
	}
	for _, h := range res.Hits {
		if len(resp.Hits) == limit {
			break
		}
		resp.Hits = append(resp.Hits, toHit(h))
	}
	resp.Returned = len(resp.Hits)
	for name, e := range res.Errors {
		if resp.Errors == nil {
			resp.Errors = map[string]string{}
		}
		resp.Errors[name] = e.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func toHit(h collection.Hit) SearchHit {
	ids := h.Fragment.IDs()
	nodes := make([]int32, len(ids))
	doc := h.Fragment.Document()
	snippet := ""
	for i, id := range ids {
		nodes[i] = int32(id)
		if t := doc.Text(id); t != "" && len(snippet) < 160 {
			if snippet != "" {
				snippet += " … "
			}
			snippet += t
		}
	}
	if len(snippet) > 200 {
		snippet = truncateUTF8(snippet, 197) + "..."
	}
	return SearchHit{
		Document: h.Document,
		Nodes:    nodes,
		Root:     int32(h.Fragment.Root()),
		Size:     h.Fragment.Size(),
		Score:    h.Score,
		Snippet:  snippet,
	}
}

// truncateUTF8 cuts s to at most max bytes without splitting a UTF-8
// sequence: the cut backs up to the nearest rune start.
func truncateUTF8(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut]
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	keywords := qs.Get("q")
	if keywords == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	q, err := query.Parse(keywords, qs.Get("filter"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	_, stratName, err := parseStrategy(qs.Get("strategy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	strat := cost.PushDown
	switch stratName {
	case "brute-force":
		strat = cost.BruteForce
	case "naive":
		strat = cost.Naive
	case "set-reduction":
		strat = cost.SetReduction
	}
	body := map[string]any{
		"query":    q.String(),
		"logical":  q.LogicalPlan().Render(),
		"physical": q.PhysicalPlan(strat).Render(),
		"strategy": strat.String(),
	}
	if qs.Get("trace") == "1" {
		// Run the query for real with span recording: the plan above is
		// the static picture, the trace is what actually executed (per
		// document), with cardinalities and durations.
		opts, _, err := parseStrategy(qs.Get("strategy"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		opts.Trace = true
		res, err := s.coll.Run(q, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		traces := make(map[string]any, len(res.Traces))
		rendered := make(map[string]string, len(res.Traces))
		for name, sp := range res.Traces {
			traces[name] = sp
			rendered[name] = sp.Render()
		}
		body["traces"] = traces
		body["rendered"] = rendered
		stats := make(map[string]query.Stats, len(res.PerDocument))
		for name, st := range res.PerDocument {
			stats[name] = st
		}
		body["stats"] = stats
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics serves the collection's metric registry: JSON by
// default, Prometheus text exposition with ?format=prom.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.coll.Metrics()
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w, "xfrag")
		return
	}
	writeJSON(w, http.StatusOK, m.Snapshot())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.coll.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"documents": st.Documents,
		"nodes":     st.Nodes,
		"terms":     st.Terms,
		"postings":  st.Postings,
		// process_joins is the process-wide join aggregate (every
		// evaluation in this process, all collections); per-query counts
		// live in query.Stats.Ops and /api/metrics.
		"process_joins": core.JoinCount(),
	})
}

func parseStrategy(s string) (query.Options, string, error) {
	switch s {
	case "", "auto":
		return query.Options{Auto: true}, "auto", nil
	case "brute-force":
		return query.Options{Strategy: cost.BruteForce}, s, nil
	case "naive":
		return query.Options{Strategy: cost.Naive}, s, nil
	case "set-reduction":
		return query.Options{Strategy: cost.SetReduction}, s, nil
	case "push-down":
		return query.Options{Strategy: cost.PushDown}, s, nil
	default:
		return query.Options{}, "", fmt.Errorf("unknown strategy %q", s)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

var _ http.Handler = (*Server)(nil)
