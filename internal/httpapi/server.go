// Package httpapi exposes a collection of XML documents as a JSON
// search service — the downstream-facing surface of the library: add
// documents, run keyword/filter queries, inspect plans. Stdlib
// net/http only.
//
// The versioned surface lives under /api/v1 and is the one to build
// against: uniform error envelope {"error":{"code","message",
// "request_id"}}, limit/offset pagination on /api/v1/search, and
// per-request evaluation deadlines (?timeout=, capped by the server).
// The original un-versioned /api/* routes remain as aliases that set a
// Deprecation header. Query endpoints sit behind an admission
// controller (bounded concurrency plus a short wait queue) that sheds
// overload with 503 + Retry-After instead of queueing forever.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/standing"
	"repro/internal/store"
)

// maxSearchLimit caps the limit query parameter of the search
// endpoints: larger values get a 400 instead of an unbounded response
// body.
const maxSearchLimit = 1000

// Config tunes the server's robustness knobs. The zero value is
// usable: no default evaluation deadline, admission sized from
// GOMAXPROCS, 16 MiB body cap.
type Config struct {
	// Logger receives the structured access log; nil disables logging
	// (request IDs, panic recovery and metrics stay active).
	Logger *slog.Logger
	// MaxBody bounds document-upload bodies in bytes (default 16 MiB).
	MaxBody int64
	// QueryTimeout is the default per-request evaluation deadline for
	// search/explain; 0 means no default deadline.
	QueryTimeout time.Duration
	// MaxTimeout caps the client-supplied ?timeout= parameter. 0 means
	// "cap at QueryTimeout when one is set, otherwise uncapped".
	MaxTimeout time.Duration
	// MaxConcurrent bounds concurrently evaluating queries (the
	// admission semaphore). 0 means 4×GOMAXPROCS; negative disables
	// admission control entirely.
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for an evaluation
	// slot beyond MaxConcurrent (default MaxConcurrent). Requests past
	// the queue shed immediately with 503.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before shedding (default 100ms).
	QueueWait time.Duration
	// Replication attaches a primary or replica role (see
	// ReplicationConfig); nil runs standalone.
	Replication *ReplicationConfig
	// TraceSample is the fraction of requests (0..1] traced into the
	// flight recorder by the deterministic sampler. 0 disables
	// sampling; a request can still force a trace with ?trace=1 or an
	// incoming sampled Traceparent header.
	TraceSample float64
	// SlowQueryThreshold is the duration at or over which a finished
	// trace also lands in the slow-query ring served by
	// /api/v1/debug/slow (default obs.DefaultSlowThreshold).
	SlowQueryThreshold time.Duration
	// TraceBuffer is the capacity of each flight-recorder ring
	// (default 128 traces).
	TraceBuffer int
	// Recorder, when set, is used instead of constructing one — lets a
	// process share one flight recorder between the HTTP layer and the
	// replication follower so /api/v1/debug/* shows both.
	Recorder *obs.Recorder
	// LegacyAPI re-mounts the retired un-versioned /api/* aliases
	// (with Deprecation headers). Default off: only /api/v1 serves.
	LegacyAPI bool
	// MaxSubscriptions caps concurrently registered standing queries
	// (watch subscriptions). 0 means 64; negative disables the watch
	// API entirely.
	MaxSubscriptions int
	// WatchBuffer is the per-subscription event-ring capacity: how
	// many events a disconnected watcher may miss and still resume via
	// ?since= without a full re-sync (default 256).
	WatchBuffer int
}

func (c *Config) setDefaults() {
	if c.MaxBody <= 0 {
		c.MaxBody = 16 << 20
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = c.QueryTimeout
	}
}

// Server routes HTTP requests to a collection, or — when constructed
// with NewWithStore — to a durable sharded store, which additionally
// serves the async ingest endpoints (POST /api/v1/docs?async=1,
// GET /api/v1/jobs/{id}).
type Server struct {
	coll    *collection.Collection // nil when store-backed
	st      *store.Store           // nil when collection-backed
	cfg     Config
	adm     *admission   // nil when admission control is disabled
	m       *obs.Metrics // backing registry, for shed/inflight series
	rec     *obs.Recorder
	reg     *standing.Registry // nil when the watch API is disabled
	routes  []routeDef
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in Middleware
	// sampleEvery/sampleSeq implement the deterministic request
	// sampler: every sampleEvery-th request is traced (0 = never).
	sampleEvery uint64
	sampleSeq   atomic.Uint64
}

// New wraps a collection without an access log. Pass nil to start
// empty. Request IDs, panic recovery and HTTP metrics are still
// active; use NewWithLogger to also log requests.
func New(coll *collection.Collection) *Server {
	return NewWithConfig(coll, Config{})
}

// NewWithLogger wraps a collection with the full request middleware:
// structured access logging to logger (nil disables logging only),
// request IDs, panic recovery, and HTTP metrics recorded into the
// collection's registry.
func NewWithLogger(coll *collection.Collection, logger *slog.Logger) *Server {
	return NewWithConfig(coll, Config{Logger: logger})
}

// NewWithConfig wraps a collection with explicit robustness settings.
// Pass nil to start empty.
func NewWithConfig(coll *collection.Collection, cfg Config) *Server {
	if coll == nil {
		coll = collection.New()
	}
	s := &Server{coll: coll, cfg: cfg}
	s.init(coll.Metrics())
	return s
}

// NewWithStore wraps a durable sharded store. Search runs under the
// request context (deadline-aware scatter-gather); POST
// /api/v1/docs?async=1 enqueues into the ingest pipeline and GET
// /api/v1/jobs/{id} polls job status. HTTP metrics land in the
// store's registry.
func NewWithStore(st *store.Store, logger *slog.Logger) *Server {
	return NewStoreWithConfig(st, Config{Logger: logger})
}

// NewStoreWithConfig wraps a durable sharded store with explicit
// robustness settings.
func NewStoreWithConfig(st *store.Store, cfg Config) *Server {
	s := &Server{st: st, cfg: cfg}
	s.init(st.Metrics())
	return s
}

// ctxKey marks request-context values set by the router wrappers.
type ctxKey int

// ctxKeyV1 flags a request that arrived via the /api/v1 surface, so
// shared handlers emit the v1 error envelope.
const ctxKeyV1 ctxKey = iota

func isV1(r *http.Request) bool {
	v, _ := r.Context().Value(ctxKeyV1).(bool)
	return v
}

func (s *Server) init(m *obs.Metrics) {
	s.cfg.setDefaults()
	if s.cfg.MaxConcurrent > 0 {
		s.adm = newAdmission(s.cfg.MaxConcurrent, s.cfg.MaxQueue, s.cfg.QueueWait)
	}
	s.m = m
	s.rec = s.cfg.Recorder
	if s.rec == nil {
		s.rec = obs.NewRecorder(s.cfg.TraceBuffer, s.cfg.SlowQueryThreshold)
	}
	if s.cfg.TraceSample > 0 {
		s.sampleEvery = uint64(math.Round(1 / min(s.cfg.TraceSample, 1)))
		if s.sampleEvery == 0 {
			s.sampleEvery = 1
		}
	}
	if s.st != nil {
		// The store's async ingest workers continue request traces; they
		// need the recorder to land the continuation in.
		s.st.SetTraceRecorder(s.rec)
	}
	// Constant 1-valued gauge carrying version/revision labels — the
	// Prometheus build-info convention.
	m.Gauge(obs.BuildInfoSeries()).Set(1)
	if s.cfg.MaxSubscriptions >= 0 {
		// The standing-query registry taps the corpus change feed —
		// the same hook primary ingest, replica WAL apply and snapshot
		// bootstrap all flow through — so watch subscriptions work
		// identically on a primary, a replica, and an in-memory
		// collection.
		s.reg = standing.NewRegistry(s.corpus(), standing.Options{
			MaxSubscriptions: s.cfg.MaxSubscriptions,
			Buffer:           s.cfg.WatchBuffer,
			Metrics:          m,
		})
		if s.st != nil {
			s.st.SetChangeListener(s.reg.Notify)
		} else {
			s.coll.SetChangeListener(s.reg.Notify)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.addRoute("GET", "/docs", "List indexed documents.", nil, s.handleListDocs)
	s.addRoute("POST", "/docs", "Add (or asynchronously enqueue) an XML document.", []routeParam{
		bp("name", "document name"), bp("xml", "document body"),
		qp("async", "1 enqueues into the ingest pipeline (store-backed servers), answering 202 with a job ID"),
	}, s.handleAddDoc)
	s.addRoute("DELETE", "/docs/{name}", "Remove one document.", []routeParam{
		pp("name", "document name"),
	}, s.handleRemoveDoc)
	s.addRoute("GET", "/jobs/{id}", "Status of one async ingest job.", []routeParam{
		pp("id", "job ID from POST /docs?async=1"),
	}, s.handleJob)
	s.addRoute("GET", "/search", "Keyword/filter search with ranked, paginated hits.", []routeParam{
		qp("q", "keyword query (required)"), qp("filter", "filter spec, e.g. size<=3,height<=2"),
		qp("strategy", "auto|brute-force|naive|set-reduction|push-down"),
		qp("limit", "page size (default 20, max 1000)"), qp("offset", "pagination offset"),
		qp("timeout", "per-request evaluation deadline, e.g. 250ms"),
		qp("trace", "1 forces a flight-recorder trace"),
	}, s.handleSearch)
	s.addRoute("GET", "/explain", "Logical/physical plan for a query; trace=1 also executes it with spans.", []routeParam{
		qp("q", "keyword query (required)"), qp("filter", "filter spec"),
		qp("strategy", "evaluation strategy"), qp("trace", "1 executes the query and returns span trees"),
	}, s.handleExplain)
	s.addRoute("GET", "/stats", "Corpus-wide document/index sizes.", nil, s.handleStats)
	s.addRoute("GET", "/metrics", "Metrics registry (JSON; format=prom for Prometheus exposition).", []routeParam{
		qp("format", "prom selects the Prometheus text format"),
	}, s.handleMetrics)
	s.addRoute("GET", "/debug/slow", "Recent slow-query traces from the flight recorder.", nil, s.handleDebugSlow)
	s.addRoute("GET", "/debug/inflight", "Currently executing traced requests.", nil, s.handleDebugInflight)
	s.addRoute("GET", "/debug/trace/{id}", "One recorded trace by ID.", []routeParam{
		pp("id", "trace ID"),
	}, s.handleDebugTrace)
	if s.reg != nil {
		s.addRoute("POST", "/watch", "Register a standing query; answers {id, seq} plus the materialized snapshot.", []routeParam{
			bp("query", "keyword query (required)"), bp("filter", "filter spec"), bp("strategy", "evaluation strategy"),
		}, s.handleWatchCreate)
		s.addRoute("GET", "/watch", "List live standing-query subscriptions.", nil, s.handleWatchList)
		s.addRoute("GET", "/watch/{id}", "Stream a subscription: SSE when Accept: text/event-stream, else long-poll JSON.", []routeParam{
			pp("id", "subscription ID"),
			qp("since", "resume after this sequence number (default 0)"),
			qp("wait", "long-poll hold time, e.g. 20s (long-poll only)"),
			qp("snapshot", "1 returns the materialized answer set instead of events (long-poll only)"),
		}, s.handleWatchGet)
		s.addRoute("DELETE", "/watch/{id}", "Cancel a subscription.", []routeParam{
			pp("id", "subscription ID"),
		}, s.handleWatchDelete)
	}
	s.initReplication()
	s.mountRoutes()
	var inner http.Handler = s.mux
	if s.role() == RoleReplica {
		// Stamp lag headers on every replica response, before the
		// handler runs so they survive handlers that write early.
		next := inner
		inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.setLagHeaders(w.Header())
			next.ServeHTTP(w, r)
		})
	}
	// Tracing sits inside Middleware: the request ID is already stamped
	// on the response when the sampler runs, so a sampled root span can
	// carry it.
	s.handler = Middleware(s.traceMiddleware(inner), s.cfg.Logger, m)
}

// Recorder returns the server's flight recorder (never nil after
// construction): the store the debug endpoints read from.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// corpus returns the backing document source as the standing-query
// Corpus view (both backends satisfy it).
func (s *Server) corpus() standing.Corpus {
	if s.st != nil {
		return s.st
	}
	return s.coll
}

// Watch returns the standing-query registry (nil when the watch API
// is disabled via a negative MaxSubscriptions).
func (s *Server) Watch() *standing.Registry { return s.reg }

// Close releases the server's background resources: the standing-query
// delta worker stops and every live subscription is canceled. The
// backing collection/store is the caller's to close.
func (s *Server) Close() {
	if s.reg != nil {
		s.reg.Close()
	}
}

// Collection returns the backing collection (nil when the server is
// store-backed; see Store).
func (s *Server) Collection() *collection.Collection { return s.coll }

// Store returns the backing store (nil when collection-backed).
func (s *Server) Store() *store.Store { return s.st }

// docCount reports the number of indexed documents on either backend.
func (s *Server) docCount() int {
	if s.st != nil {
		return s.st.Len()
	}
	return s.coll.Len()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// handleHealth is pure liveness: the process is up and serving. Load
// balancers should route on /readyz instead.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{"status": "ok", "documents": s.docCount()}
	if s.st != nil {
		body["ingest_queue_depth"] = s.st.QueueDepth()
		body["shards"] = s.st.Shards()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReady is readiness: 503 while the node should not receive
// traffic — during WAL replay, after a failed background replay, or
// while the ingest queue is saturated. A collection-backed server has
// no replay or queue and is always ready.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.role() == RoleReplica {
		// A replica's readiness is its freshness: a node lagging past
		// the staleness bound (or not yet connected to its primary)
		// should not receive read traffic.
		lag, ok := s.replicaReady()
		body := map[string]any{
			"ready":                 ok,
			"role":                  RoleReplica.String(),
			"max_staleness_seconds": s.cfg.Replication.maxStaleness().Seconds(),
			"lag":                   lag,
		}
		status := http.StatusOK
		if !ok {
			status = http.StatusServiceUnavailable
			body["reason"] = errStaleReplica.Error()
		}
		writeJSON(w, status, body)
		return
	}
	if s.st == nil {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "documents": s.coll.Len()})
		return
	}
	rd := s.st.Readiness()
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}

// DocInfo describes one indexed document.
type DocInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Terms int    `json:"terms"`
}

func (s *Server) handleListDocs(w http.ResponseWriter, _ *http.Request) {
	names := func() []string {
		if s.st != nil {
			return s.st.Names()
		}
		return s.coll.Names()
	}()
	var docs []DocInfo
	for _, name := range names {
		eng := s.engine(name)
		if eng == nil { // removed between listing and lookup
			continue
		}
		docs = append(docs, DocInfo{
			Name:  name,
			Nodes: eng.Document().Len(),
			Terms: eng.Index().Size(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"documents": docs})
}

// AddDocRequest is the body of POST /api/v1/docs.
type AddDocRequest struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
}

func (s *Server) handleAddDoc(w http.ResponseWriter, r *http.Request) {
	if s.rejectReplicaWrite(w, r) {
		return
	}
	var req AddDocRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err := dec.Decode(&req); err != nil {
		s.error(w, r, http.StatusBadRequest, "bad_request", fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if req.Name == "" || req.XML == "" {
		s.error(w, r, http.StatusBadRequest, "bad_request", errors.New("need name and xml"))
		return
	}
	if r.URL.Query().Get("async") == "1" {
		if s.st == nil {
			s.error(w, r, http.StatusBadRequest, "bad_request", errors.New("async ingest requires a store-backed server (run with -data-dir)"))
			return
		}
		// A traced submit hands its trace ID to the ingest pipeline:
		// the worker records the parse/index as a continuation trace
		// under the same ID (see store.EnqueueTraced).
		var tid obs.TraceID
		if tr := obs.TraceFromContext(r.Context()); tr != nil {
			tid = tr.ID()
		}
		id, err := s.st.EnqueueTraced(req.Name, req.XML, tid)
		switch {
		case errors.Is(err, store.ErrQueueFull):
			// Backpressure, not failure: the client should retry later.
			w.Header().Set("Retry-After", "1")
			s.error(w, r, http.StatusTooManyRequests, "queue_full", err)
			return
		case errors.Is(err, store.ErrReplaying):
			w.Header().Set("Retry-After", "1")
			s.error(w, r, http.StatusServiceUnavailable, "not_ready", err)
			return
		case err != nil:
			s.error(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"job": id, "document": req.Name})
		return
	}
	var err error
	if s.st != nil {
		err = s.st.AddXML(req.Name, req.XML)
	} else {
		err = s.coll.AddXML(req.Name, req.XML)
	}
	switch {
	case errors.Is(err, store.ErrReplaying):
		w.Header().Set("Retry-After", "1")
		s.error(w, r, http.StatusServiceUnavailable, "not_ready", err)
		return
	case err != nil:
		s.error(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"added": req.Name})
}

// handleJob serves GET /api/v1/jobs/{id}: the status of one async
// ingest job.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		s.error(w, r, http.StatusNotFound, "not_found", errors.New("no async ingest on this server"))
		return
	}
	id := r.PathValue("id")
	job, ok := s.st.Job(id)
	if !ok {
		s.error(w, r, http.StatusNotFound, "not_found", fmt.Errorf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleRemoveDoc(w http.ResponseWriter, r *http.Request) {
	if s.rejectReplicaWrite(w, r) {
		return
	}
	name := r.PathValue("name")
	removed := false
	if s.st != nil {
		removed = s.st.Remove(name)
	} else {
		removed = s.coll.Remove(name)
	}
	if !removed {
		s.error(w, r, http.StatusNotFound, "not_found", fmt.Errorf("no document %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// engine looks up a per-document engine on either backend.
func (s *Server) engine(name string) *engine.Engine {
	if s.st != nil {
		return s.st.Engine(name)
	}
	return s.coll.Engine(name)
}

// SearchHit is one result of GET /api/v1/search.
type SearchHit struct {
	Document string  `json:"document"`
	Nodes    []int32 `json:"nodes"`
	Root     int32   `json:"root"`
	Size     int     `json:"size"`
	Score    float64 `json:"score"`
	// Snippet is the truncated text of the fragment's nodes in
	// document order.
	Snippet string `json:"snippet,omitempty"`
}

// SearchResponse is the body of GET /api/v1/search.
type SearchResponse struct {
	Query    string      `json:"query"`
	Filter   string      `json:"filter,omitempty"`
	Strategy string      `json:"strategy"`
	Hits     []SearchHit `json:"hits"`
	// Total counts every hit across the collection; Returned counts
	// the hits actually present in Hits after limit/offset.
	Total    int `json:"total"`
	Returned int `json:"returned"`
	// Limit and Offset echo the effective pagination window.
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
	// Errors maps document name → its evaluation error. A deadline
	// that expires mid-search degrades to partial results: finished
	// documents keep their hits, unfinished ones appear here.
	Errors map[string]string `json:"errors,omitempty"`
}

// admit claims an evaluation slot for a query endpoint, writing the
// 503 + Retry-After shed response itself when the server is
// overloaded. Callers must release() when admit returns true.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	if s.adm == nil {
		return true
	}
	waitStart := time.Now()
	err := s.adm.acquire(r.Context())
	switch {
	case err == nil:
		// Queue wait is the admission stage: how long the request sat
		// waiting for an evaluation slot before any work started.
		wait := time.Since(waitStart)
		s.m.ObserveStage(obs.StageAdmission, wait)
		if sp := obs.SpanFromContext(r.Context()); sp != nil {
			sp.SetAttr("admission_wait", wait.String())
		}
		s.m.Gauge(obs.MInflightQueries).Set(int64(s.adm.inflight()))
		return true
	case errors.Is(err, errShed):
		s.m.Counter(obs.MQueriesShed).Add(1)
		w.Header().Set("Retry-After", "1")
		s.error(w, r, http.StatusServiceUnavailable, "overloaded", errors.New("server overloaded; retry later"))
	default:
		// The client went away while queued; nothing useful to serve.
		s.error(w, r, http.StatusServiceUnavailable, "canceled", err)
	}
	return false
}

func (s *Server) release() {
	if s.adm != nil {
		s.adm.release()
		s.m.Gauge(obs.MInflightQueries).Set(int64(s.adm.inflight()))
	}
}

// queryDeadline derives the evaluation context for a query endpoint:
// the server's default QueryTimeout, overridden by ?timeout= (a Go
// duration such as 250ms), which MaxTimeout caps — clients may
// shorten the deadline freely but never extend it past the server's
// bound.
func (s *Server) queryDeadline(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.cfg.QueryTimeout
	if t := r.URL.Query().Get("timeout"); t != "" {
		td, err := time.ParseDuration(t)
		if err != nil || td <= 0 {
			return nil, nil, fmt.Errorf("bad timeout %q (want a positive duration like 250ms)", t)
		}
		d = td
		if s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	keywords := qs.Get("q")
	if keywords == "" {
		s.error(w, r, http.StatusBadRequest, "bad_request", errors.New("missing q parameter"))
		return
	}
	filterSpec := qs.Get("filter")
	opts, stratName, err := parseStrategy(qs.Get("strategy"))
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	limit := 20
	if l := qs.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 {
			s.error(w, r, http.StatusBadRequest, "bad_request", fmt.Errorf("bad limit %q", l))
			return
		}
		if n > maxSearchLimit {
			s.error(w, r, http.StatusBadRequest, "bad_request", fmt.Errorf("limit %d exceeds maximum %d", n, maxSearchLimit))
			return
		}
		limit = n
	}
	offset := 0
	if o := qs.Get("offset"); o != "" {
		n, err := strconv.Atoi(o)
		if err != nil || n < 0 {
			s.error(w, r, http.StatusBadRequest, "bad_request", fmt.Errorf("bad offset %q", o))
			return
		}
		offset = n
	}
	q, err := query.Parse(keywords, filterSpec)
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	resp := SearchResponse{Query: keywords, Filter: filterSpec, Strategy: stratName, Limit: limit, Offset: offset}
	// Materialized-view fast path: a search matching a registered
	// standing query is served from its answer set — O(page), no
	// evaluation, no admission slot — and stays warm across ingest
	// because the delta worker keeps the view current per affected
	// document. Sampled/traced requests skip it: their trace wants
	// the spans of a real evaluation.
	if s.reg != nil && obs.TraceFromContext(r.Context()) == nil {
		if sub, ok := s.reg.Lookup(q, opts); ok {
			s.m.Counter(obs.MStandingCacheHits).Add(1)
			vhits := sub.Snapshot()
			resp.Total = len(vhits)
			if offset < len(vhits) {
				vhits = vhits[offset:]
			} else {
				vhits = nil
			}
			for _, h := range vhits {
				if len(resp.Hits) == limit {
					break
				}
				resp.Hits = append(resp.Hits, SearchHit(h))
			}
			resp.Returned = len(resp.Hits)
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	ctx, cancel, err := s.queryDeadline(r)
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	defer cancel()
	if !s.admit(w, r) {
		return
	}
	defer s.release()

	var (
		hits []collection.Hit
		errs map[string]error
	)
	if s.st != nil {
		// Store-backed: deadline-aware scatter-gather with a global
		// top-k merge — the context carries the client disconnect and
		// the evaluation deadline down to the per-shard join loops.
		res, err := s.st.Run(ctx, q, opts, offset+limit)
		if err != nil {
			s.error(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
		hits, errs, resp.Total = res.Hits, res.Errors, res.Total
	} else {
		res, err := s.coll.RunContext(ctx, q, opts)
		if err != nil {
			s.error(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
		hits, errs, resp.Total = res.Hits, res.Errors, len(res.Hits)
	}
	if offset < len(hits) {
		hits = hits[offset:]
	} else {
		hits = nil
	}
	for _, h := range hits {
		if len(resp.Hits) == limit {
			break
		}
		resp.Hits = append(resp.Hits, toHit(h))
	}
	resp.Returned = len(resp.Hits)
	for name, e := range errs {
		if resp.Errors == nil {
			resp.Errors = map[string]string{}
		}
		resp.Errors[name] = e.Error()
	}
	if tr := obs.TraceFromContext(r.Context()); tr != nil {
		// Summarize the request on its flight-recorder record so a slow
		// entry is diagnosable without replaying the query.
		tr.SetExtra("query", keywords)
		if filterSpec != "" {
			tr.SetExtra("filter", filterSpec)
		}
		tr.SetExtra("strategy", stratName)
		tr.SetExtra("total", resp.Total)
		tr.SetExtra("returned", resp.Returned)
	}
	writeJSON(w, http.StatusOK, resp)
}

func toHit(h collection.Hit) SearchHit {
	ids := h.Fragment.IDs()
	nodes := make([]int32, len(ids))
	for i, id := range ids {
		nodes[i] = int32(id)
	}
	return SearchHit{
		Document: h.Document,
		Nodes:    nodes,
		Root:     int32(h.Fragment.Root()),
		Size:     h.Fragment.Size(),
		Score:    h.Score,
		// One snippet implementation for search hits and watch
		// deltas, so a fragment presents identically on both
		// surfaces (and the view byte-identity holds).
		Snippet: collection.Snippet(h.Fragment),
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	keywords := qs.Get("q")
	if keywords == "" {
		s.error(w, r, http.StatusBadRequest, "bad_request", errors.New("missing q parameter"))
		return
	}
	q, err := query.Parse(keywords, qs.Get("filter"))
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	_, stratName, err := parseStrategy(qs.Get("strategy"))
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "bad_request", err)
		return
	}
	strat := cost.PushDown
	switch stratName {
	case "brute-force":
		strat = cost.BruteForce
	case "naive":
		strat = cost.Naive
	case "set-reduction":
		strat = cost.SetReduction
	}
	body := map[string]any{
		"query":    q.String(),
		"logical":  q.LogicalPlan().Render(),
		"physical": q.PhysicalPlan(strat).Render(),
		"strategy": strat.String(),
	}
	if s.st != nil {
		// The adaptive planner's view: the compiled plan each shard's
		// plan cache would serve this query on the auto path, with the
		// statistics it was derived from. Served through the real
		// caches, so outcome shows hit/miss/replan as a search would.
		plans := s.st.ExplainPlans(q, cost.DefaultChooser())
		shardPlans := make([]map[string]any, 0, len(plans))
		for _, sp := range plans {
			entry := map[string]any{
				"shard":   sp.Shard,
				"outcome": sp.Outcome.String(),
			}
			if p := sp.Plan; p != nil {
				strats := make([]string, len(p.SetStrategies))
				for i, ss := range p.SetStrategies {
					strats[i] = ss.String()
				}
				entry["strategy"] = p.Strategy.String()
				entry["set_strategies"] = strats
				entry["rf_estimates"] = p.RFs
				entry["expected_seeds"] = p.ExpectedSeeds
				entry["join_order"] = p.Order
				entry["stats_epoch"] = p.Epoch
				entry["docs"] = p.Docs
				entry["physical"] = q.PhysicalPlanFor(p.Strategy, p).Render()
			}
			shardPlans = append(shardPlans, entry)
		}
		body["plan"] = shardPlans
	}
	if qs.Get("trace") == "1" {
		// Run the query for real with span recording: the plan above is
		// the static picture, the trace is what actually executed (per
		// document), with cardinalities and durations. The real run
		// counts against the admission semaphore and the evaluation
		// deadline like any search.
		opts, _, err := parseStrategy(qs.Get("strategy"))
		if err != nil {
			s.error(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
		opts.Trace = true
		ctx, cancel, err := s.queryDeadline(r)
		if err != nil {
			s.error(w, r, http.StatusBadRequest, "bad_request", err)
			return
		}
		defer cancel()
		if !s.admit(w, r) {
			return
		}
		defer s.release()
		var (
			spanByDoc map[string]*obs.Span
			statByDoc map[string]query.Stats
		)
		if s.st != nil {
			res, err := s.st.Run(ctx, q, opts, 0)
			if err != nil {
				s.error(w, r, http.StatusBadRequest, "bad_request", err)
				return
			}
			spanByDoc, statByDoc = res.Traces, res.PerDocument
		} else {
			res, err := s.coll.RunContext(ctx, q, opts)
			if err != nil {
				s.error(w, r, http.StatusBadRequest, "bad_request", err)
				return
			}
			spanByDoc, statByDoc = res.Traces, res.PerDocument
		}
		traces := make(map[string]any, len(spanByDoc))
		rendered := make(map[string]string, len(spanByDoc))
		for name, sp := range spanByDoc {
			traces[name] = sp
			rendered[name] = sp.Render()
		}
		body["traces"] = traces
		body["rendered"] = rendered
		stats := make(map[string]query.Stats, len(statByDoc))
		for name, st := range statByDoc {
			stats[name] = st
		}
		body["stats"] = stats
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics serves the backing registry: JSON by default,
// Prometheus text exposition with ?format=prom. A store-backed server
// exports the store registry (ingest/WAL/search metrics, incl. the
// queue-depth gauge and ingest-latency histogram) at the top level
// plus each shard's engine registry — as a "shards" array in JSON and
// under an xfrag_shard<N> prefix in Prometheus format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	prom := r.URL.Query().Get("format") == "prom"
	if s.st == nil {
		m := s.coll.Metrics()
		if prom {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			m.WritePrometheus(w, "xfrag")
			return
		}
		body := m.Snapshot()
		body["build_info"] = obs.BuildInfo()
		writeJSON(w, http.StatusOK, body)
		return
	}
	if prom {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.st.Metrics().WritePrometheus(w, "xfrag")
		for i, m := range s.st.ShardMetrics() {
			m.WritePrometheus(w, fmt.Sprintf("xfrag_shard%d", i))
		}
		return
	}
	body := s.st.Metrics().Snapshot()
	body["build_info"] = obs.BuildInfo()
	shards := make([]map[string]any, 0, s.st.Shards())
	for _, m := range s.st.ShardMetrics() {
		shards = append(shards, m.Snapshot())
	}
	body["shards"] = shards
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var st collection.Stats
	if s.st != nil {
		st = s.st.Stats()
	} else {
		st = s.coll.Stats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"documents": st.Documents,
		"nodes":     st.Nodes,
		"terms":     st.Terms,
		"postings":  st.Postings,
		// process_joins is the process-wide join aggregate (every
		// evaluation in this process, all collections); per-query counts
		// live in query.Stats.Ops and /api/v1/metrics.
		"process_joins": core.JoinCount(),
	})
}

func parseStrategy(s string) (query.Options, string, error) {
	switch s {
	case "", "auto":
		return query.Options{Auto: true}, "auto", nil
	case "brute-force":
		return query.Options{Strategy: cost.BruteForce}, s, nil
	case "naive":
		return query.Options{Strategy: cost.Naive}, s, nil
	case "set-reduction":
		return query.Options{Strategy: cost.SetReduction}, s, nil
	case "push-down":
		return query.Options{Strategy: cost.PushDown}, s, nil
	default:
		return query.Options{}, "", fmt.Errorf("unknown strategy %q", s)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ErrorEnvelope is the uniform v1 error body.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries a machine-readable code, a human-readable message
// and the request ID for log correlation.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id"`
}

// error writes an error response in the flavor the request arrived
// under: the v1 envelope {"error":{"code","message","request_id"}}
// for /api/v1, the legacy flat {"error": "message"} for the
// deprecated aliases.
func (s *Server) error(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	if isV1(r) {
		writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{
			Code:      code,
			Message:   err.Error(),
			RequestID: w.Header().Get(RequestIDHeader),
		}})
		return
	}
	writeError(w, status, err)
}

// writeError writes the legacy flat error shape; the panic-recovery
// middleware also uses it (a panic has no route flavor).
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

var _ http.Handler = (*Server)(nil)
