// Package httpapi exposes a collection of XML documents as a JSON
// search service — the downstream-facing surface of the library: add
// documents, run keyword/filter queries, inspect plans. Stdlib
// net/http only.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/collection"
	"repro/internal/cost"
	"repro/internal/query"
)

// Server routes HTTP requests to a collection.
type Server struct {
	coll *collection.Collection
	mux  *http.ServeMux
	// maxBody bounds document uploads (bytes).
	maxBody int64
}

// New wraps a collection. Pass nil to start empty.
func New(coll *collection.Collection) *Server {
	if coll == nil {
		coll = collection.New()
	}
	s := &Server{coll: coll, mux: http.NewServeMux(), maxBody: 16 << 20}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/docs", s.handleListDocs)
	s.mux.HandleFunc("POST /api/docs", s.handleAddDoc)
	s.mux.HandleFunc("DELETE /api/docs/{name}", s.handleRemoveDoc)
	s.mux.HandleFunc("GET /api/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/explain", s.handleExplain)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	return s
}

// Collection returns the backing collection.
func (s *Server) Collection() *collection.Collection { return s.coll }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "documents": s.coll.Len()})
}

// DocInfo describes one indexed document.
type DocInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Terms int    `json:"terms"`
}

func (s *Server) handleListDocs(w http.ResponseWriter, _ *http.Request) {
	var docs []DocInfo
	for _, name := range s.coll.Names() {
		eng := s.coll.Engine(name)
		docs = append(docs, DocInfo{
			Name:  name,
			Nodes: eng.Document().Len(),
			Terms: eng.Index().Size(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"documents": docs})
}

// AddDocRequest is the body of POST /api/docs.
type AddDocRequest struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
}

func (s *Server) handleAddDoc(w http.ResponseWriter, r *http.Request) {
	var req AddDocRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if req.Name == "" || req.XML == "" {
		writeError(w, http.StatusBadRequest, errors.New("need name and xml"))
		return
	}
	if err := s.coll.AddXML(req.Name, req.XML); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"added": req.Name})
}

func (s *Server) handleRemoveDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.coll.Remove(name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no document %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// SearchHit is one result of GET /api/search.
type SearchHit struct {
	Document string  `json:"document"`
	Nodes    []int32 `json:"nodes"`
	Root     int32   `json:"root"`
	Size     int     `json:"size"`
	Score    float64 `json:"score"`
	// Snippet is the truncated text of the fragment's nodes in
	// document order.
	Snippet string `json:"snippet,omitempty"`
}

// SearchResponse is the body of GET /api/search.
type SearchResponse struct {
	Query    string            `json:"query"`
	Filter   string            `json:"filter,omitempty"`
	Strategy string            `json:"strategy"`
	Hits     []SearchHit       `json:"hits"`
	Total    int               `json:"total"`
	Errors   map[string]string `json:"errors,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	keywords := qs.Get("q")
	if keywords == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	filterSpec := qs.Get("filter")
	opts, stratName, err := parseStrategy(qs.Get("strategy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 20
	if l := qs.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", l))
			return
		}
		limit = n
	}
	res, err := s.coll.Search(keywords, filterSpec, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := SearchResponse{
		Query: keywords, Filter: filterSpec, Strategy: stratName,
		Total: len(res.Hits),
	}
	for _, h := range res.Hits {
		if len(resp.Hits) == limit {
			break
		}
		resp.Hits = append(resp.Hits, toHit(h))
	}
	for name, e := range res.Errors {
		if resp.Errors == nil {
			resp.Errors = map[string]string{}
		}
		resp.Errors[name] = e.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func toHit(h collection.Hit) SearchHit {
	ids := h.Fragment.IDs()
	nodes := make([]int32, len(ids))
	doc := h.Fragment.Document()
	snippet := ""
	for i, id := range ids {
		nodes[i] = int32(id)
		if t := doc.Text(id); t != "" && len(snippet) < 160 {
			if snippet != "" {
				snippet += " … "
			}
			snippet += t
		}
	}
	if len(snippet) > 200 {
		snippet = snippet[:197] + "..."
	}
	return SearchHit{
		Document: h.Document,
		Nodes:    nodes,
		Root:     int32(h.Fragment.Root()),
		Size:     h.Fragment.Size(),
		Score:    h.Score,
		Snippet:  snippet,
	}
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	keywords := qs.Get("q")
	if keywords == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	q, err := query.Parse(keywords, qs.Get("filter"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	_, stratName, err := parseStrategy(qs.Get("strategy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	strat := cost.PushDown
	switch stratName {
	case "brute-force":
		strat = cost.BruteForce
	case "naive":
		strat = cost.Naive
	case "set-reduction":
		strat = cost.SetReduction
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"query":    q.String(),
		"logical":  q.LogicalPlan().Render(),
		"physical": q.PhysicalPlan(strat).Render(),
		"strategy": strat.String(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.coll.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"documents": st.Documents,
		"nodes":     st.Nodes,
		"terms":     st.Terms,
		"postings":  st.Postings,
	})
}

func parseStrategy(s string) (query.Options, string, error) {
	switch s {
	case "", "auto":
		return query.Options{Auto: true}, "auto", nil
	case "brute-force":
		return query.Options{Strategy: cost.BruteForce}, s, nil
	case "naive":
		return query.Options{Strategy: cost.Naive}, s, nil
	case "set-reduction":
		return query.Options{Strategy: cost.SetReduction}, s, nil
	case "push-down":
		return query.Options{Strategy: cost.PushDown}, s, nil
	default:
		return query.Options{}, "", fmt.Errorf("unknown strategy %q", s)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

var _ http.Handler = (*Server)(nil)
