// Package httpapi exposes a collection of XML documents as a JSON
// search service — the downstream-facing surface of the library: add
// documents, run keyword/filter queries, inspect plans. Stdlib
// net/http only.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"unicode/utf8"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/store"
)

// maxSearchLimit caps the limit query parameter of GET /api/search:
// larger values get a 400 instead of an unbounded response body.
const maxSearchLimit = 1000

// Server routes HTTP requests to a collection, or — when constructed
// with NewWithStore — to a durable sharded store, which additionally
// serves the async ingest endpoints (POST /api/docs?async=1,
// GET /api/jobs/{id}).
type Server struct {
	coll    *collection.Collection // nil when store-backed
	st      *store.Store           // nil when collection-backed
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in Middleware
	// maxBody bounds document uploads (bytes).
	maxBody int64
}

// New wraps a collection without an access log. Pass nil to start
// empty. Request IDs, panic recovery and HTTP metrics are still
// active; use NewWithLogger to also log requests.
func New(coll *collection.Collection) *Server {
	return NewWithLogger(coll, nil)
}

// NewWithLogger wraps a collection with the full request middleware:
// structured access logging to logger (nil disables logging only),
// request IDs, panic recovery, and HTTP metrics recorded into the
// collection's registry.
func NewWithLogger(coll *collection.Collection, logger *slog.Logger) *Server {
	if coll == nil {
		coll = collection.New()
	}
	s := &Server{coll: coll, maxBody: 16 << 20}
	s.init(logger, coll.Metrics())
	return s
}

// NewWithStore wraps a durable sharded store. Search runs under the
// request context (deadline-aware scatter-gather); POST
// /api/docs?async=1 enqueues into the ingest pipeline and GET
// /api/jobs/{id} polls job status. HTTP metrics land in the store's
// registry.
func NewWithStore(st *store.Store, logger *slog.Logger) *Server {
	s := &Server{st: st, maxBody: 16 << 20}
	s.init(logger, st.Metrics())
	return s
}

func (s *Server) init(logger *slog.Logger, m *obs.Metrics) {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/docs", s.handleListDocs)
	s.mux.HandleFunc("POST /api/docs", s.handleAddDoc)
	s.mux.HandleFunc("DELETE /api/docs/{name}", s.handleRemoveDoc)
	s.mux.HandleFunc("GET /api/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /api/search", s.handleSearch)
	s.mux.HandleFunc("GET /api/explain", s.handleExplain)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/metrics", s.handleMetrics)
	s.handler = Middleware(s.mux, logger, m)
}

// Collection returns the backing collection (nil when the server is
// store-backed; see Store).
func (s *Server) Collection() *collection.Collection { return s.coll }

// Store returns the backing store (nil when collection-backed).
func (s *Server) Store() *store.Store { return s.st }

// docCount reports the number of indexed documents on either backend.
func (s *Server) docCount() int {
	if s.st != nil {
		return s.st.Len()
	}
	return s.coll.Len()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{"status": "ok", "documents": s.docCount()}
	if s.st != nil {
		body["ingest_queue_depth"] = s.st.QueueDepth()
		body["shards"] = s.st.Shards()
	}
	writeJSON(w, http.StatusOK, body)
}

// DocInfo describes one indexed document.
type DocInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Terms int    `json:"terms"`
}

func (s *Server) handleListDocs(w http.ResponseWriter, _ *http.Request) {
	names := func() []string {
		if s.st != nil {
			return s.st.Names()
		}
		return s.coll.Names()
	}()
	var docs []DocInfo
	for _, name := range names {
		eng := s.engine(name)
		if eng == nil { // removed between listing and lookup
			continue
		}
		docs = append(docs, DocInfo{
			Name:  name,
			Nodes: eng.Document().Len(),
			Terms: eng.Index().Size(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"documents": docs})
}

// AddDocRequest is the body of POST /api/docs.
type AddDocRequest struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
}

func (s *Server) handleAddDoc(w http.ResponseWriter, r *http.Request) {
	var req AddDocRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON body: %w", err))
		return
	}
	if req.Name == "" || req.XML == "" {
		writeError(w, http.StatusBadRequest, errors.New("need name and xml"))
		return
	}
	if r.URL.Query().Get("async") == "1" {
		if s.st == nil {
			writeError(w, http.StatusBadRequest, errors.New("async ingest requires a store-backed server (run with -data-dir)"))
			return
		}
		id, err := s.st.Enqueue(req.Name, req.XML)
		switch {
		case errors.Is(err, store.ErrQueueFull):
			// Backpressure, not failure: the client should retry later.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]any{"job": id, "document": req.Name})
		return
	}
	var err error
	if s.st != nil {
		err = s.st.AddXML(req.Name, req.XML)
	} else {
		err = s.coll.AddXML(req.Name, req.XML)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"added": req.Name})
}

// handleJob serves GET /api/jobs/{id}: the status of one async
// ingest job.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusNotFound, errors.New("no async ingest on this server"))
		return
	}
	id := r.PathValue("id")
	job, ok := s.st.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleRemoveDoc(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	removed := false
	if s.st != nil {
		removed = s.st.Remove(name)
	} else {
		removed = s.coll.Remove(name)
	}
	if !removed {
		writeError(w, http.StatusNotFound, fmt.Errorf("no document %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// engine looks up a per-document engine on either backend.
func (s *Server) engine(name string) *engine.Engine {
	if s.st != nil {
		return s.st.Engine(name)
	}
	return s.coll.Engine(name)
}

// SearchHit is one result of GET /api/search.
type SearchHit struct {
	Document string  `json:"document"`
	Nodes    []int32 `json:"nodes"`
	Root     int32   `json:"root"`
	Size     int     `json:"size"`
	Score    float64 `json:"score"`
	// Snippet is the truncated text of the fragment's nodes in
	// document order.
	Snippet string `json:"snippet,omitempty"`
}

// SearchResponse is the body of GET /api/search.
type SearchResponse struct {
	Query    string      `json:"query"`
	Filter   string      `json:"filter,omitempty"`
	Strategy string      `json:"strategy"`
	Hits     []SearchHit `json:"hits"`
	// Total counts every hit across the collection; Returned counts
	// the hits actually present in Hits after the limit.
	Total    int               `json:"total"`
	Returned int               `json:"returned"`
	Errors   map[string]string `json:"errors,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	keywords := qs.Get("q")
	if keywords == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	filterSpec := qs.Get("filter")
	opts, stratName, err := parseStrategy(qs.Get("strategy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 20
	if l := qs.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", l))
			return
		}
		if n > maxSearchLimit {
			writeError(w, http.StatusBadRequest, fmt.Errorf("limit %d exceeds maximum %d", n, maxSearchLimit))
			return
		}
		limit = n
	}
	resp := SearchResponse{Query: keywords, Filter: filterSpec, Strategy: stratName}
	var (
		hits []collection.Hit
		errs map[string]error
	)
	if s.st != nil {
		// Store-backed: deadline-aware scatter-gather with a global
		// top-k merge — the request context carries any client
		// disconnect or server timeout down to the per-shard searches.
		res, err := s.st.Search(r.Context(), keywords, filterSpec, opts, limit)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		hits, errs, resp.Total = res.Hits, res.Errors, res.Total
	} else {
		res, err := s.coll.Search(keywords, filterSpec, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		hits, errs, resp.Total = res.Hits, res.Errors, len(res.Hits)
	}
	for _, h := range hits {
		if len(resp.Hits) == limit {
			break
		}
		resp.Hits = append(resp.Hits, toHit(h))
	}
	resp.Returned = len(resp.Hits)
	for name, e := range errs {
		if resp.Errors == nil {
			resp.Errors = map[string]string{}
		}
		resp.Errors[name] = e.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func toHit(h collection.Hit) SearchHit {
	ids := h.Fragment.IDs()
	nodes := make([]int32, len(ids))
	doc := h.Fragment.Document()
	snippet := ""
	for i, id := range ids {
		nodes[i] = int32(id)
		if t := doc.Text(id); t != "" && len(snippet) < 160 {
			if snippet != "" {
				snippet += " … "
			}
			snippet += t
		}
	}
	if len(snippet) > 200 {
		snippet = truncateUTF8(snippet, 197) + "..."
	}
	return SearchHit{
		Document: h.Document,
		Nodes:    nodes,
		Root:     int32(h.Fragment.Root()),
		Size:     h.Fragment.Size(),
		Score:    h.Score,
		Snippet:  snippet,
	}
}

// truncateUTF8 cuts s to at most max bytes without splitting a UTF-8
// sequence: the cut backs up to the nearest rune start.
func truncateUTF8(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut]
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	keywords := qs.Get("q")
	if keywords == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	q, err := query.Parse(keywords, qs.Get("filter"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	_, stratName, err := parseStrategy(qs.Get("strategy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	strat := cost.PushDown
	switch stratName {
	case "brute-force":
		strat = cost.BruteForce
	case "naive":
		strat = cost.Naive
	case "set-reduction":
		strat = cost.SetReduction
	}
	body := map[string]any{
		"query":    q.String(),
		"logical":  q.LogicalPlan().Render(),
		"physical": q.PhysicalPlan(strat).Render(),
		"strategy": strat.String(),
	}
	if qs.Get("trace") == "1" {
		// Run the query for real with span recording: the plan above is
		// the static picture, the trace is what actually executed (per
		// document), with cardinalities and durations.
		opts, _, err := parseStrategy(qs.Get("strategy"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		opts.Trace = true
		var (
			spanByDoc map[string]*obs.Span
			statByDoc map[string]query.Stats
		)
		if s.st != nil {
			res, err := s.st.Run(r.Context(), q, opts, 0)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			spanByDoc, statByDoc = res.Traces, res.PerDocument
		} else {
			res, err := s.coll.Run(q, opts)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			spanByDoc, statByDoc = res.Traces, res.PerDocument
		}
		traces := make(map[string]any, len(spanByDoc))
		rendered := make(map[string]string, len(spanByDoc))
		for name, sp := range spanByDoc {
			traces[name] = sp
			rendered[name] = sp.Render()
		}
		body["traces"] = traces
		body["rendered"] = rendered
		stats := make(map[string]query.Stats, len(statByDoc))
		for name, st := range statByDoc {
			stats[name] = st
		}
		body["stats"] = stats
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics serves the backing registry: JSON by default,
// Prometheus text exposition with ?format=prom. A store-backed server
// exports the store registry (ingest/WAL/search metrics, incl. the
// queue-depth gauge and ingest-latency histogram) at the top level
// plus each shard's engine registry — as a "shards" array in JSON and
// under an xfrag_shard<N> prefix in Prometheus format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	prom := r.URL.Query().Get("format") == "prom"
	if s.st == nil {
		m := s.coll.Metrics()
		if prom {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			m.WritePrometheus(w, "xfrag")
			return
		}
		writeJSON(w, http.StatusOK, m.Snapshot())
		return
	}
	if prom {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.st.Metrics().WritePrometheus(w, "xfrag")
		for i, m := range s.st.ShardMetrics() {
			m.WritePrometheus(w, fmt.Sprintf("xfrag_shard%d", i))
		}
		return
	}
	body := s.st.Metrics().Snapshot()
	shards := make([]map[string]any, 0, s.st.Shards())
	for _, m := range s.st.ShardMetrics() {
		shards = append(shards, m.Snapshot())
	}
	body["shards"] = shards
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var st collection.Stats
	if s.st != nil {
		st = s.st.Stats()
	} else {
		st = s.coll.Stats()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"documents": st.Documents,
		"nodes":     st.Nodes,
		"terms":     st.Terms,
		"postings":  st.Postings,
		// process_joins is the process-wide join aggregate (every
		// evaluation in this process, all collections); per-query counts
		// live in query.Stats.Ops and /api/metrics.
		"process_joins": core.JoinCount(),
	})
}

func parseStrategy(s string) (query.Options, string, error) {
	switch s {
	case "", "auto":
		return query.Options{Auto: true}, "auto", nil
	case "brute-force":
		return query.Options{Strategy: cost.BruteForce}, s, nil
	case "naive":
		return query.Options{Strategy: cost.Naive}, s, nil
	case "set-reduction":
		return query.Options{Strategy: cost.SetReduction}, s, nil
	case "push-down":
		return query.Options{Strategy: cost.PushDown}, s, nil
	default:
		return query.Options{}, "", fmt.Errorf("unknown strategy %q", s)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

var _ http.Handler = (*Server)(nil)
