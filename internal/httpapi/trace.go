package httpapi

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// TraceIDHeader carries the trace ID of a sampled request on the
// response, so a caller that got traced (by sampling, ?trace=1, or an
// incoming Traceparent) knows which ID to look up under
// /api/v1/debug/trace/{id}.
const TraceIDHeader = "X-Xfrag-Trace-Id"

// traceMiddleware decides per request whether to record a full trace
// into the flight recorder. A request is traced when any of:
//
//   - it carries a sampled W3C Traceparent header (an upstream caller
//     is tracing; we continue its trace ID),
//   - it asks explicitly with ?trace=1,
//   - the deterministic sampler picks it (every Nth request, N derived
//     from Config.TraceSample).
//
// Unsampled requests pass through with zero added allocation: no
// context values are attached, so every SpanFromContext check down
// the stack answers nil without work. Sampled requests get a root
// span carrying the request ID, and the response echoes the trace ID
// in X-Xfrag-Trace-Id and a Traceparent header.
func (s *Server) traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, upSampled, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		force := (ok && upSampled) || strings.Contains(r.URL.RawQuery, "trace=1")
		if !force && (s.sampleEvery == 0 || s.sampleSeq.Add(1)%s.sampleEvery != 0) {
			next.ServeHTTP(w, r)
			return
		}
		if !ok {
			id = obs.TraceID{} // StartTrace mints a fresh one
		}
		tr := s.rec.StartTrace("http", r.Method+" "+r.URL.Path, id)
		if tr == nil { // no recorder configured
			next.ServeHTTP(w, r)
			return
		}
		root := tr.Root()
		root.SetAttr("method", r.Method)
		root.SetAttr("path", r.URL.Path)
		// Middleware (the outer wrapper) has already stamped the request
		// ID on the response; recording it on the root span ties access
		// log lines to traces.
		if rid := w.Header().Get(RequestIDHeader); rid != "" {
			root.SetAttr("request_id", rid)
		}
		w.Header().Set(TraceIDHeader, tr.ID().String())
		w.Header().Set(obs.TraceparentHeader, obs.FormatTraceparent(tr.ID(), true))
		// Finish in a defer so a panicking handler still lands its trace
		// in the recorder (with whatever spans it accumulated).
		defer tr.Finish(0)
		next.ServeHTTP(w, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
	})
}

// handleDebugSlow serves GET /api/v1/debug/slow: the flight
// recorder's ring of queries that finished at or over the slow
// threshold, newest first, each with its full span tree.
func (s *Server) handleDebugSlow(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ms": s.rec.Threshold().Milliseconds(),
		"traces":       s.rec.Slow(),
	})
}

// handleDebugInflight serves GET /api/v1/debug/inflight: every trace
// started but not yet finished, with live durations — what the server
// is doing right now.
func (s *Server) handleDebugInflight(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.rec.Inflight()})
}

// handleDebugTrace serves GET /api/v1/debug/trace/{id}: every record
// the flight recorder holds for one trace ID — typically the HTTP
// request's trace, plus any continuation traces it spawned (an async
// ingest job, a replication stream).
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id, ok := obs.ParseTraceID(raw)
	if !ok {
		s.error(w, r, http.StatusBadRequest, "bad_request", fmt.Errorf("bad trace id %q (want 32 hex digits)", raw))
		return
	}
	recs := s.rec.Lookup(id)
	if len(recs) == 0 {
		s.error(w, r, http.StatusNotFound, "not_found", errors.New("trace not found (expired from the ring, or never sampled)"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"trace_id": id.String(), "records": recs})
}
