package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/docgen"
	"repro/internal/obs"
	"repro/internal/store"
)

// legacyServer builds a server that opts back into the retired
// un-versioned /api aliases, as -legacy-api does.
func legacyServer(t testing.TB) *Server {
	t.Helper()
	coll := collection.New()
	if err := coll.Add(docgen.FigureOne()); err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(coll, Config{LegacyAPI: true})
}

// TestV1ErrorEnvelope checks the two error shapes: /api/v1 responds
// with {"error":{"code","message","request_id"}}, the deprecated
// /api alias (when opted back in) keeps the original flat
// {"error":"message"} that existing clients parse.
func TestV1ErrorEnvelope(t *testing.T) {
	s := legacyServer(t)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/search", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("code = %d", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("bad envelope: %v\n%s", err, rec.Body.String())
	}
	if env.Error.Code != "bad_request" {
		t.Fatalf("code = %q", env.Error.Code)
	}
	if !strings.Contains(env.Error.Message, "missing q") {
		t.Fatalf("message = %q", env.Error.Message)
	}
	if env.Error.RequestID == "" || env.Error.RequestID != rec.Header().Get(RequestIDHeader) {
		t.Fatalf("request_id %q does not match header %q", env.Error.RequestID, rec.Header().Get(RequestIDHeader))
	}

	rec, body := get(t, s, "/api/search")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("legacy code = %d", rec.Code)
	}
	if _, ok := body["error"].(string); !ok {
		t.Fatalf("legacy error must stay a flat string: %s", rec.Body)
	}
}

// TestLegacyAPIDefaultOff checks the un-versioned aliases are gone
// unless -legacy-api opts back in: the default server 404s them.
func TestLegacyAPIDefaultOff(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{"/api/docs", "/api/search?q=xquery", "/api/stats", "/api/metrics"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s = %d, want 404 with legacy API off", path, rec.Code)
		}
	}
}

// TestV1DeprecationAliases checks every legacy route (behind the
// -legacy-api opt-in) answers identically to its v1 twin but flags
// itself deprecated with a successor-version link.
func TestV1DeprecationAliases(t *testing.T) {
	s := legacyServer(t)
	for _, path := range []string{"/docs", "/search?q=xquery", "/stats", "/metrics"} {
		legacy, _ := get(t, s, "/api"+path)
		v1, _ := get(t, s, "/api/v1"+path)
		if legacy.Code != v1.Code {
			t.Fatalf("%s: legacy %d != v1 %d", path, legacy.Code, v1.Code)
		}
		if legacy.Header().Get("Deprecation") != "true" {
			t.Fatalf("%s: legacy route missing Deprecation header", path)
		}
		link := legacy.Header().Get("Link")
		if !strings.Contains(link, "/api/v1") || !strings.Contains(link, "successor-version") {
			t.Fatalf("%s: bad Link header %q", path, link)
		}
		if v1.Header().Get("Deprecation") != "" {
			t.Fatalf("%s: v1 route must not be deprecated", path)
		}
	}
}

// TestV1SearchPagination pages through the figure 1 running example
// (4 hits) and checks limit/offset windowing against the full list.
func TestV1SearchPagination(t *testing.T) {
	s := testServer(t)
	const q = "/api/v1/search?q=xquery+optimization&filter=size<=3"

	full := searchResp(t, s, q)
	if full.Total != 4 || full.Returned != 4 {
		t.Fatalf("full: total=%d returned=%d", full.Total, full.Returned)
	}

	var paged []SearchHit
	for offset := 0; offset < full.Total; offset += 2 {
		p := searchResp(t, s, q+"&limit=2&offset="+strconv.Itoa(offset))
		if p.Total != 4 || p.Limit != 2 || p.Offset != offset {
			t.Fatalf("page@%d: total=%d limit=%d offset=%d", offset, p.Total, p.Limit, p.Offset)
		}
		if p.Returned != 2 {
			t.Fatalf("page@%d: returned=%d", offset, p.Returned)
		}
		paged = append(paged, p.Hits...)
	}
	if len(paged) != len(full.Hits) {
		t.Fatalf("pages concatenate to %d hits, full list has %d", len(paged), len(full.Hits))
	}
	for i := range paged {
		if paged[i].Root != full.Hits[i].Root || paged[i].Score != full.Hits[i].Score {
			t.Fatalf("hit %d differs between paged and full listing", i)
		}
	}

	past := searchResp(t, s, q+"&offset=100")
	if past.Returned != 0 || past.Total != 4 {
		t.Fatalf("past-the-end: returned=%d total=%d", past.Returned, past.Total)
	}

	for _, bad := range []string{"&offset=-1", "&offset=x", "&limit=0", "&limit=99999"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, q+bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: code = %d", bad, rec.Code)
		}
	}
}

func searchResp(t *testing.T, s *Server, path string) SearchResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: code = %d body %s", path, rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestV1SearchTimeoutParam checks the ?timeout= contract: a malformed
// value is a 400, a microscopic one degrades to 200 with the
// documents that missed the deadline reported per-document, and the
// server cap bounds the client value.
func TestV1SearchTimeoutParam(t *testing.T) {
	coll := collection.New()
	if err := coll.Add(docgen.FigureOne()); err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(coll, Config{QueryTimeout: time.Second, MaxTimeout: time.Second})

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/search?q=xquery&timeout=banana", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad timeout: code = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/search?q=xquery&timeout=-5s", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative timeout: code = %d", rec.Code)
	}

	resp := searchResp(t, s, "/api/v1/search?q=xquery+optimization&filter=size<=3&timeout=1ns")
	if len(resp.Errors) != 1 {
		t.Fatalf("1ns timeout: want 1 per-document error, got %v", resp.Errors)
	}
	for _, msg := range resp.Errors {
		if !strings.Contains(msg, "deadline") {
			t.Fatalf("error %q does not mention the deadline", msg)
		}
	}

	// A client asking for an hour is capped at MaxTimeout; the request
	// still answers normally well inside the capped second.
	resp = searchResp(t, s, "/api/v1/search?q=xquery+optimization&filter=size<=3&timeout=1h")
	if resp.Total != 4 || len(resp.Errors) != 0 {
		t.Fatalf("capped timeout: total=%d errors=%v", resp.Total, resp.Errors)
	}
}

// TestOverloadSheds503 fills the admission controller and checks the
// server sheds with 503 + Retry-After while admitted work completes
// untouched — the overload contract of the v1 surface. (Slots are
// taken directly on the semaphore so the test is deterministic: no
// goroutine timing, no real slow queries.)
func TestOverloadSheds503(t *testing.T) {
	coll := collection.New()
	if err := coll.Add(docgen.FigureOne()); err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(coll, Config{
		MaxConcurrent: 2,
		MaxQueue:      1,
		QueueWait:     20 * time.Millisecond,
	})

	// Occupy every evaluation slot, as two long-running queries would.
	for i := 0; i < 2; i++ {
		if err := s.adm.acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// The next request queues, waits QueueWait, then sheds.
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/search?q=xquery", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d body %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "overloaded" {
		t.Fatalf("error code = %q", env.Error.Code)
	}
	if n := s.coll.Metrics().Counter(obs.MQueriesShed).Value(); n != 1 {
		t.Fatalf("shed counter = %d", n)
	}

	// Release the slots — the in-flight queries finishing — and the
	// same request is admitted and served.
	s.adm.release()
	s.adm.release()
	resp := searchResp(t, s, "/api/v1/search?q=xquery+optimization&filter=size<=3")
	if resp.Total != 4 {
		t.Fatalf("post-overload search: total = %d", resp.Total)
	}

	// Explain's trace run sits behind the same controller.
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/explain?q=xquery&trace=1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("explain under overload: code = %d", rec.Code)
	}
	s.adm.release()
	s.adm.release()
}

// TestOverloadQueueAdmits checks the other half of the contract: a
// queued request that gets a slot within QueueWait is served, not
// shed.
func TestOverloadQueueAdmits(t *testing.T) {
	coll := collection.New()
	if err := coll.Add(docgen.FigureOne()); err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(coll, Config{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueWait:     2 * time.Second,
	})
	if err := s.adm.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.adm.release()
	}()
	resp := searchResp(t, s, "/api/v1/search?q=xquery+optimization&filter=size<=3")
	if resp.Total != 4 {
		t.Fatalf("queued request: total = %d", resp.Total)
	}
}

// TestReadyzCollection checks a collection-backed server is always
// ready: no WAL, no queue, nothing to wait for.
func TestReadyzCollection(t *testing.T) {
	rec, body := get(t, testServer(t), "/readyz")
	if rec.Code != http.StatusOK || body["ready"] != true {
		t.Fatalf("readyz = %d %v", rec.Code, body)
	}
}

// TestReadyzStore checks the store-backed report: the full readiness
// document (replay counters, queue saturation) with 200 once serving.
func TestReadyzStore(t *testing.T) {
	s, _ := storeServer(t, store.Options{Shards: 2, QueueSize: 8})
	if w := postDoc(t, s, "/api/v1/docs", "r.xml", "<doc><par>ready</par></doc>"); w.Code != http.StatusCreated {
		t.Fatalf("add: %d", w.Code)
	}
	rec, body := get(t, s, "/readyz")
	if rec.Code != http.StatusOK || body["ready"] != true {
		t.Fatalf("readyz = %d %v", rec.Code, body)
	}
	if body["documents"].(float64) != 1 || body["ingest_queue_capacity"].(float64) != 8 {
		t.Fatalf("readiness document incomplete: %v", body)
	}
	if _, present := body["replaying"]; !present {
		t.Fatalf("readiness must report replay state: %v", body)
	}
}
