package httpapi

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/repl"
)

// Role is the node's place in a replication topology.
type Role int

const (
	// RoleStandalone is a single node: no replication endpoints, no
	// lag headers — the behavior before replication existed.
	RoleStandalone Role = iota
	// RolePrimary accepts writes and serves the internal /repl/v1/*
	// WAL-shipping endpoints for followers.
	RolePrimary
	// RoleReplica serves reads from a follower-fed store, rejects
	// writes with 403 + the primary's URL, and gates /readyz on
	// replication staleness.
	RoleReplica
)

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleReplica:
		return "replica"
	default:
		return "standalone"
	}
}

// Replica-facing response headers. Lag headers appear on every
// replica response so a load balancer (or a client doing
// read-your-writes) can route around stale nodes without an extra
// round trip; the primary-URL header accompanies 403 write
// rejections.
const (
	// ReplicaLagHeader is the replica's worst-shard lag in records.
	ReplicaLagHeader = "X-Xfrag-Replica-Lag"
	// ReplicaLagSecondsHeader is the worst-shard staleness in seconds.
	ReplicaLagSecondsHeader = "X-Xfrag-Replica-Lag-Seconds"
	// PrimaryURLHeader names the primary to send writes to.
	PrimaryURLHeader = "X-Xfrag-Primary-Url"
)

// ReplicationConfig attaches a replication role to a server.
type ReplicationConfig struct {
	// Role selects the topology position (default RoleStandalone).
	Role Role
	// PrimaryURL is the primary's base URL; required on a replica
	// (write rejections point clients at it).
	PrimaryURL string
	// Follower is the replica's running pull loop; required on a
	// replica. The caller starts and stops it — the server only reads
	// lag from it.
	Follower *repl.Follower
	// MaxStaleness is how far a replica may lag before /readyz
	// reports 503 (default 30s).
	MaxStaleness time.Duration
	// Stream tunes the primary's WAL streaming (optional; Store and
	// Metrics are filled in from the server).
	Stream repl.Server
}

func (c *ReplicationConfig) maxStaleness() time.Duration {
	if c.MaxStaleness > 0 {
		return c.MaxStaleness
	}
	return 30 * time.Second
}

// initReplication mounts the role-specific routes. Called from init
// after the core routes are registered; validation errors surface as
// a panic because they are programmer errors (a replica without a
// follower cannot serve anything sensible).
func (s *Server) initReplication() {
	rc := s.cfg.Replication
	if rc == nil || rc.Role == RoleStandalone {
		return
	}
	switch rc.Role {
	case RolePrimary:
		if s.st == nil || !s.st.Durable() {
			panic("httpapi: primary role requires a durable store (-data-dir)")
		}
		stream := rc.Stream
		stream.Store = s.st
		stream.Metrics = s.st.Metrics()
		s.mux.Handle("GET /repl/v1/", stream.Handler())
	case RoleReplica:
		if rc.Follower == nil || rc.PrimaryURL == "" {
			panic("httpapi: replica role requires a Follower and a PrimaryURL")
		}
	}
	s.addRoute("GET", "/replication", "Replication role, lag and WAL positions.", nil, s.handleReplication)
}

// role returns the effective replication role.
func (s *Server) role() Role {
	if s.cfg.Replication == nil {
		return RoleStandalone
	}
	return s.cfg.Replication.Role
}

// rejectReplicaWrite answers mutation attempts on a replica: 403 plus
// the primary's URL, in the header and the error message, so clients
// can re-issue the write without out-of-band configuration.
func (s *Server) rejectReplicaWrite(w http.ResponseWriter, r *http.Request) bool {
	if s.role() != RoleReplica {
		return false
	}
	primary := s.cfg.Replication.PrimaryURL
	w.Header().Set(PrimaryURLHeader, primary)
	s.error(w, r, http.StatusForbidden, "read_only_replica",
		fmt.Errorf("this node is a read replica; send writes to the primary at %s", primary))
	return true
}

// setLagHeaders stamps the replica's current lag onto a response.
func (s *Server) setLagHeaders(h http.Header) {
	lag := s.cfg.Replication.Follower.Lag()
	h.Set(ReplicaLagHeader, strconv.FormatUint(lag.MaxLagRecords, 10))
	h.Set(ReplicaLagSecondsHeader, strconv.FormatFloat(lag.MaxLagSeconds, 'f', 3, 64))
}

// replicaReady reports whether the replica is fresh enough to serve:
// connected to the primary, fully caught up at least once (a freshly
// started, still-empty replica must not pass just because its
// staleness clock hasn't run out yet), and within the staleness bound
// since.
func (s *Server) replicaReady() (repl.Lag, bool) {
	rc := s.cfg.Replication
	lag := rc.Follower.Lag()
	return lag, lag.Connected && lag.SyncedOnce && lag.MaxLagSeconds <= rc.maxStaleness().Seconds()
}

// handleReplication serves GET /api/v1/replication: the node's role
// plus, on a replica, the full per-shard lag breakdown, and on a
// primary, the per-shard WAL positions followers stream from.
func (s *Server) handleReplication(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"role": s.role().String()}
	switch s.role() {
	case RoleReplica:
		rc := s.cfg.Replication
		body["primary_url"] = rc.PrimaryURL
		body["max_staleness_seconds"] = rc.maxStaleness().Seconds()
		body["lag"] = rc.Follower.Lag()
	case RolePrimary:
		pos, err := s.st.WALPositions()
		if err != nil {
			s.error(w, r, http.StatusServiceUnavailable, "not_ready", err)
			return
		}
		body["positions"] = pos
	}
	writeJSON(w, http.StatusOK, body)
}

// errStaleReplica is the readyz detail when lag exceeds the bound.
var errStaleReplica = errors.New("replica lag exceeds staleness bound")
