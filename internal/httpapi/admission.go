package httpapi

import (
	"context"
	"errors"
	"time"
)

// errShed is the admission controller's overload signal; the HTTP
// layer maps it to 503 Service Unavailable with a Retry-After header.
var errShed = errors.New("httpapi: server overloaded")

// admission bounds concurrent query evaluation with a semaphore plus a
// short bounded wait queue. The powerset fragment join is worst-case
// exponential, so without admission control a burst of heavy queries
// queues unboundedly inside net/http and every request times out;
// shedding the excess immediately with 503 + Retry-After keeps the
// admitted requests fast and tells well-behaved clients when to come
// back.
type admission struct {
	sem     chan struct{} // buffered; one slot per concurrent query
	waiters chan struct{} // buffered; one slot per queued waiter
	maxWait time.Duration // how long a queued waiter holds on
}

// newAdmission sizes the controller: maxConcurrent evaluation slots,
// maxQueue waiters beyond them, each waiting at most maxWait.
func newAdmission(maxConcurrent, maxQueue int, maxWait time.Duration) *admission {
	return &admission{
		sem:     make(chan struct{}, maxConcurrent),
		waiters: make(chan struct{}, maxQueue),
		maxWait: maxWait,
	}
}

// acquire claims an evaluation slot. The fast path is a non-blocking
// semaphore grab. When the server is at capacity the request joins the
// bounded wait queue; if the queue is full, or no slot frees within
// maxWait, acquire sheds with errShed. A context cancellation while
// waiting returns ctx.Err() (the client is gone; nothing to serve).
func (a *admission) acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case a.waiters <- struct{}{}:
		defer func() { <-a.waiters }()
	default:
		return errShed
	}
	t := time.NewTimer(a.maxWait)
	defer t.Stop()
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-t.C:
		return errShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns an evaluation slot claimed by acquire.
func (a *admission) release() {
	if a != nil {
		<-a.sem
	}
}

// inflight reports how many evaluation slots are currently held.
func (a *admission) inflight() int {
	if a == nil {
		return 0
	}
	return len(a.sem)
}
