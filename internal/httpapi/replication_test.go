package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/docgen"
	"repro/internal/repl"
	"repro/internal/store"
)

// table1Query is the paper's running example (Figure 1 / Table 1):
// keyword query "xquery optimization" under the size<=3 fragment
// filter. The acceptance bar for replication is that a caught-up
// replica answers it byte-identically to the primary.
const table1Query = "/api/v1/search?q=xquery+optimization&filter=size<=3"

// replicatedPair is a primary HTTP server plus a replica HTTP server
// fed from it over the real /repl/v1 wire.
type replicatedPair struct {
	primary    *Server
	replica    *Server
	primarySrv *httptest.Server
	follower   *repl.Follower
}

func newReplicatedPair(t *testing.T, maxStaleness time.Duration) *replicatedPair {
	t.Helper()
	pst, err := store.Open(store.Options{Dir: t.TempDir(), Shards: 2, CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pst.Close(context.Background()) })
	if err := pst.Add(docgen.FigureOne()); err != nil {
		t.Fatal(err)
	}
	primary := NewStoreWithConfig(pst, Config{Replication: &ReplicationConfig{
		Role: RolePrimary,
		Stream: repl.Server{
			Poll:      5 * time.Millisecond,
			Heartbeat: 20 * time.Millisecond,
		},
	}})
	primarySrv := httptest.NewServer(primary)
	t.Cleanup(primarySrv.Close)

	rst, err := store.Open(store.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rst.Close(context.Background()) })
	follower := &repl.Follower{
		PrimaryURL:    primarySrv.URL,
		Store:         rst,
		Metrics:       rst.Metrics(),
		RetryInterval: 20 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := follower.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		follower.Wait()
	})
	replica := NewStoreWithConfig(rst, Config{Replication: &ReplicationConfig{
		Role:         RoleReplica,
		PrimaryURL:   primarySrv.URL,
		Follower:     follower,
		MaxStaleness: maxStaleness,
	}})
	return &replicatedPair{primary: primary, replica: replica, primarySrv: primarySrv, follower: follower}
}

func (p *replicatedPair) waitSynced(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		lag := p.follower.Lag()
		if lag.Connected && lag.Synced && lag.MaxLagRecords == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never converged: %+v", p.follower.Lag())
}

// TestReplicaSearchByteIdentical runs the Table 1 query against the
// primary and a caught-up replica and demands byte-identical response
// bodies — the replication path must not perturb scoring, ordering,
// pagination, or serialization in any way.
func TestReplicaSearchByteIdentical(t *testing.T) {
	p := newReplicatedPair(t, 0)
	p.waitSynced(t)

	primaryRec := httptest.NewRecorder()
	p.primary.ServeHTTP(primaryRec, httptest.NewRequest(http.MethodGet, table1Query, nil))
	replicaRec := httptest.NewRecorder()
	p.replica.ServeHTTP(replicaRec, httptest.NewRequest(http.MethodGet, table1Query, nil))

	if primaryRec.Code != http.StatusOK || replicaRec.Code != http.StatusOK {
		t.Fatalf("codes: primary=%d replica=%d", primaryRec.Code, replicaRec.Code)
	}
	if !bytes.Equal(primaryRec.Body.Bytes(), replicaRec.Body.Bytes()) {
		t.Fatalf("replica answer differs from primary:\nprimary: %s\nreplica: %s",
			primaryRec.Body.String(), replicaRec.Body.String())
	}
	// Sanity: the query actually exercised the engine (4 hits in the
	// paper's running example), so identical bodies are meaningful.
	var resp SearchResponse
	if err := json.Unmarshal(primaryRec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 4 {
		t.Fatalf("table 1 query returned %d hits, want 4", resp.Total)
	}
	// Every replica response carries lag headers for LB routing.
	if replicaRec.Header().Get(ReplicaLagHeader) == "" || replicaRec.Header().Get(ReplicaLagSecondsHeader) == "" {
		t.Fatalf("replica response missing lag headers: %v", replicaRec.Header())
	}
	if primaryRec.Header().Get(ReplicaLagHeader) != "" {
		t.Fatal("primary response must not carry replica lag headers")
	}
}

// TestReplicaRejectsWrites checks both mutation endpoints answer 403
// with the machine-readable code and the primary's URL in the header,
// so a client can re-issue the write without out-of-band config.
func TestReplicaRejectsWrites(t *testing.T) {
	p := newReplicatedPair(t, 0)
	p.waitSynced(t)

	body := `{"name":"new-doc","xml":"<a><b>text</b></a>"}`
	post := httptest.NewRequest(http.MethodPost, "/api/v1/docs", strings.NewReader(body))
	post.Header.Set("Content-Type", "application/json")
	del := httptest.NewRequest(http.MethodDelete, "/api/v1/docs/fig1", nil)

	for _, req := range []*http.Request{post, del} {
		rec := httptest.NewRecorder()
		p.replica.ServeHTTP(rec, req)
		if rec.Code != http.StatusForbidden {
			t.Fatalf("%s %s: code = %d, want 403", req.Method, req.URL.Path, rec.Code)
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("bad envelope: %v\n%s", err, rec.Body.String())
		}
		if env.Error.Code != "read_only_replica" {
			t.Fatalf("error code = %q", env.Error.Code)
		}
		if got := rec.Header().Get(PrimaryURLHeader); got != p.primarySrv.URL {
			t.Fatalf("primary url header = %q, want %q", got, p.primarySrv.URL)
		}
		if !strings.Contains(env.Error.Message, p.primarySrv.URL) {
			t.Fatalf("error message %q does not name the primary", env.Error.Message)
		}
	}
	// The same write still works on the primary.
	rec := httptest.NewRecorder()
	post2 := httptest.NewRequest(http.MethodPost, "/api/v1/docs", strings.NewReader(body))
	post2.Header.Set("Content-Type", "application/json")
	p.primary.ServeHTTP(rec, post2)
	if rec.Code != http.StatusCreated && rec.Code != http.StatusOK && rec.Code != http.StatusAccepted {
		t.Fatalf("primary write failed: %d %s", rec.Code, rec.Body.String())
	}
}

// TestReplicaNotReadyBeforeInitialSync pins the readiness gap the
// staleness clock alone cannot cover: a freshly started replica whose
// follower has connected to the primary but never completed a first
// catch-up holds no data, and must report 503 even though it is far
// younger than the staleness bound — otherwise a load balancer routes
// reads to an empty node for up to max-staleness after every replica
// start.
func TestReplicaNotReadyBeforeInitialSync(t *testing.T) {
	// A stub primary that answers the status probe but whose WAL
	// stream never delivers a message: the follower connects, yet no
	// shard can ever prove it reached the tip.
	status := repl.Status{ShardCount: 1, Positions: []store.WALPosition{{Shard: 0, Offset: 128, Records: 2}}}
	mux := http.NewServeMux()
	mux.HandleFunc("/repl/v1/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(status)
	})
	mux.HandleFunc("/repl/v1/wal", func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	rst, err := store.Open(store.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rst.Close(context.Background()) })
	follower := &repl.Follower{
		PrimaryURL:    srv.URL,
		Store:         rst,
		Metrics:       rst.Metrics(),
		RetryInterval: 10 * time.Millisecond,
		IdleTimeout:   50 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := follower.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		follower.Wait()
	})
	replica := NewStoreWithConfig(rst, Config{Replication: &ReplicationConfig{
		Role:       RoleReplica,
		PrimaryURL: srv.URL,
		Follower:   follower,
		// Generous bound: the node is well inside it, so only the
		// initial-sync gate can fail it.
		MaxStaleness: time.Hour,
	}})

	deadline := time.Now().Add(10 * time.Second)
	for !follower.Lag().Connected {
		if time.Now().After(deadline) {
			t.Fatal("follower never connected to stub primary")
		}
		time.Sleep(5 * time.Millisecond)
	}
	rec := httptest.NewRecorder()
	replica.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad readyz body: %v\n%s", err, rec.Body.String())
	}
	if rec.Code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("never-synced replica must not be ready: %d %v", rec.Code, body)
	}
}

// TestReplicaReadyzStaleness drives /readyz through its three states:
// 503 before the follower connects, 200 once caught up, and 503 again
// after the primary becomes unreachable for longer than the staleness
// bound (the follower's freshness proof ages out).
func TestReplicaReadyzStaleness(t *testing.T) {
	const maxStaleness = 150 * time.Millisecond
	p := newReplicatedPair(t, maxStaleness)

	ready := func() (int, map[string]any) {
		rec := httptest.NewRecorder()
		p.replica.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad readyz body: %v\n%s", err, rec.Body.String())
		}
		return rec.Code, body
	}

	p.waitSynced(t)
	code, body := ready()
	if code != http.StatusOK || body["ready"] != true {
		t.Fatalf("caught-up replica not ready: %d %v", code, body)
	}
	if body["role"] != "replica" {
		t.Fatalf("role = %v", body["role"])
	}

	// Partition the replica from its primary: streams break, the
	// freshness proof stops refreshing, and once it is older than the
	// staleness bound the replica must pull itself out of rotation.
	p.primarySrv.CloseClientConnections()
	p.primarySrv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body = ready()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partitioned replica still ready after staleness bound: %d %v", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if body["reason"] != errStaleReplica.Error() {
		t.Fatalf("reason = %v", body["reason"])
	}
	if body["ready"] != false {
		t.Fatalf("ready = %v", body["ready"])
	}
}

// TestReplicationEndpoint checks the introspection route on both
// roles: the primary reports its per-shard WAL positions, the replica
// its primary URL and lag breakdown.
func TestReplicationEndpoint(t *testing.T) {
	p := newReplicatedPair(t, 0)
	p.waitSynced(t)

	rec, body := get(t, p.primary, "/api/v1/replication")
	if rec.Code != http.StatusOK || body["role"] != "primary" {
		t.Fatalf("primary: %d %v", rec.Code, body)
	}
	if _, ok := body["positions"].([]any); !ok {
		t.Fatalf("primary missing positions: %v", body)
	}

	rec, body = get(t, p.replica, "/api/v1/replication")
	if rec.Code != http.StatusOK || body["role"] != "replica" {
		t.Fatalf("replica: %d %v", rec.Code, body)
	}
	if body["primary_url"] != p.primarySrv.URL {
		t.Fatalf("primary_url = %v", body["primary_url"])
	}
	lag, ok := body["lag"].(map[string]any)
	if !ok || lag["connected"] != true {
		t.Fatalf("replica lag = %v", body["lag"])
	}

	// A standalone server must not expose the route at all.
	s := testServer(t)
	recS := httptest.NewRecorder()
	s.ServeHTTP(recS, httptest.NewRequest(http.MethodGet, "/api/v1/replication", nil))
	if recS.Code != http.StatusNotFound {
		t.Fatalf("standalone /replication = %d, want 404", recS.Code)
	}
}
