package httpapi

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/collection"
	"repro/internal/obs"
)

func TestMetricsEndpointJSON(t *testing.T) {
	s := testServer(t)
	// Drive one search so the evaluation counters are live.
	if rec, _ := get(t, s, "/api/v1/search?q=XQuery+optimization&filter=size<=3"); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	rec, body := get(t, s, "/api/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if q, ok := body[obs.MQueries].(float64); !ok || q < 1 {
		t.Fatalf("%s = %v, want >= 1", obs.MQueries, body[obs.MQueries])
	}
	if j, ok := body[obs.MJoins].(float64); !ok || j < 1 {
		t.Fatalf("%s = %v, want >= 1", obs.MJoins, body[obs.MJoins])
	}
	hist, ok := body[obs.MQuerySeconds].(map[string]any)
	if !ok {
		t.Fatalf("%s missing: %v", obs.MQuerySeconds, body)
	}
	if hist["count"].(float64) < 1 {
		t.Fatalf("latency histogram count = %v", hist["count"])
	}
}

func TestMetricsEndpointPrometheus(t *testing.T) {
	s := testServer(t)
	if rec, _ := get(t, s, "/api/v1/search?q=XQuery+optimization"); rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/api/v1/metrics?format=prom", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics prom = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE xfrag_queries_total counter",
		"# TYPE xfrag_query_seconds histogram",
		`xfrag_query_seconds_bucket{le="+Inf"}`,
		"# TYPE xfrag_http_requests_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	s := testServer(t)
	// Client-supplied ID is echoed.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(RequestIDHeader, "my-id-42")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); got != "my-id-42" {
		t.Fatalf("request id = %q, want my-id-42", got)
	}
	// Absent ID gets generated.
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec2.Header().Get(RequestIDHeader) == "" {
		t.Fatal("no generated request id")
	}
}

func TestMiddlewarePanicRecovery(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	m := obs.NewMetrics()
	h := Middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}), logger, m)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/panic", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("code = %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic response not JSON: %v\n%s", err, rec.Body.String())
	}
	if body["error"] == "" {
		t.Fatalf("panic response missing error: %v", body)
	}
	if m.Counter(obs.MHTTPPanics).Value() != 1 {
		t.Fatalf("%s = %d, want 1", obs.MHTTPPanics, m.Counter(obs.MHTTPPanics).Value())
	}
	if !strings.Contains(logBuf.String(), "boom") {
		t.Fatalf("panic not logged: %s", logBuf.String())
	}
}

func TestRequestLogging(t *testing.T) {
	var logBuf bytes.Buffer
	coll := collection.New()
	s := NewWithLogger(coll, slog.New(slog.NewTextHandler(&logBuf, nil)))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	log := logBuf.String()
	for _, want := range []string{"method=GET", "path=/healthz", "status=200", "request_id="} {
		if !strings.Contains(log, want) {
			t.Fatalf("access log missing %q: %s", want, log)
		}
	}
}

func TestSearchLimitCap(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/v1/search?q=XQuery&limit=1001")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("code = %d, want 400 (%v)", rec.Code, body)
	}
	env := body["error"].(map[string]any)
	if !strings.Contains(env["message"].(string), "1000") {
		t.Fatalf("error = %v, want mention of the cap", env)
	}
	if rec, _ := get(t, s, "/api/v1/search?q=XQuery&limit=1000"); rec.Code != http.StatusOK {
		t.Fatalf("limit=1000 = %d, want 200", rec.Code)
	}
}

func TestSearchTotalAndReturned(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/v1/search?q=XQuery+optimization&filter=size<=3&limit=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	if body["total"].(float64) != 4 {
		t.Fatalf("total = %v, want 4", body["total"])
	}
	if body["returned"].(float64) != 2 {
		t.Fatalf("returned = %v, want 2", body["returned"])
	}
	if hits := body["hits"].([]any); len(hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(hits))
	}
}

func TestExplainTrace(t *testing.T) {
	s := testServer(t)
	// Query-parameter name → Strategy.String() as the root span detail.
	details := map[string]string{
		"brute-force":   "brute-force",
		"naive":         "naive-fixed-point",
		"set-reduction": "set-reduction",
		"push-down":     "push-down",
	}
	for _, strat := range []string{"brute-force", "naive", "set-reduction", "push-down"} {
		rec, body := get(t, s, "/api/v1/explain?q=XQuery+optimization&filter=size<=3&strategy="+strat+"&trace=1")
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: code = %d (%v)", strat, rec.Code, body)
		}
		traces, ok := body["traces"].(map[string]any)
		if !ok || len(traces) != 1 {
			t.Fatalf("%s: traces = %v", strat, body["traces"])
		}
		tr := traces["figure1.xml"].(map[string]any)
		if tr["op"] != "evaluate" || tr["detail"] != details[strat] {
			t.Fatalf("%s: root span = %v [%v]", strat, tr["op"], tr["detail"])
		}
		if tr["out"].(float64) != 4 {
			t.Fatalf("%s: out = %v, want 4", strat, tr["out"])
		}
		if len(tr["children"].([]any)) < 4 {
			t.Fatalf("%s: children = %v", strat, tr["children"])
		}
		rendered := body["rendered"].(map[string]any)["figure1.xml"].(string)
		if !strings.Contains(rendered, "evaluate ["+details[strat]+"]") || !strings.Contains(rendered, "seed") {
			t.Fatalf("%s: rendered trace = %s", strat, rendered)
		}
		stats := body["stats"].(map[string]any)["figure1.xml"].(map[string]any)
		if stats["Answers"].(float64) != 4 {
			t.Fatalf("%s: stats = %v", strat, stats)
		}
	}
	// Without trace=1 the old shape is preserved.
	_, body := get(t, s, "/api/v1/explain?q=XQuery&strategy=push-down")
	if _, present := body["traces"]; present {
		t.Fatal("traces present without trace=1")
	}
}
