package httpapi

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// RequestIDHeader carries the request ID on both the request (honored
// when the client supplies one) and the response.
const RequestIDHeader = "X-Request-Id"

// reqSeq numbers requests of this process for generated request IDs.
var reqSeq atomic.Uint64

// statusRecorder captures the status code written by a handler so the
// middleware can log and count it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so streaming handlers (the
// replication WAL stream) can push chunks through the middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController on Go 1.20+.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Middleware wraps next with the service's request instrumentation:
// a request ID (honoring an incoming X-Request-Id, else generated),
// panic recovery to a JSON 500, a structured access log via logger,
// and request counters/latency histograms in m. Both logger and m may
// be nil (logging/metrics are then skipped; recovery and IDs remain).
func Middleware(next http.Handler, logger *slog.Logger, m *obs.Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = fmt.Sprintf("req-%06d", reqSeq.Add(1))
		}
		w.Header().Set(RequestIDHeader, id)
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				m.Counter(obs.MHTTPPanics).Add(1)
				if logger != nil {
					logger.Error("panic serving request",
						"request_id", id,
						"method", r.Method,
						"path", r.URL.Path,
						"panic", fmt.Sprint(p),
						"stack", string(debug.Stack()),
					)
				}
				if rec.status == 0 {
					writeError(rec, http.StatusInternalServerError, fmt.Errorf("internal server error (request %s)", id))
				}
			}
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			elapsed := time.Since(start)
			m.Counter(obs.MHTTPRequests).Add(1)
			m.Counter(fmt.Sprintf("http_responses_%dxx_total", status/100)).Add(1)
			m.Histogram(obs.MHTTPRequestSeconds, obs.LatencyBuckets).Observe(elapsed.Seconds())
			if logger != nil {
				logger.Info("request",
					"request_id", id,
					"method", r.Method,
					"path", r.URL.Path,
					"status", status,
					"duration", elapsed,
				)
			}
		}()
		next.ServeHTTP(rec, r)
	})
}
