package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/collection"
	"repro/internal/docgen"
)

func testServer(t testing.TB) *Server {
	t.Helper()
	coll := collection.New()
	if err := coll.Add(docgen.FigureOne()); err != nil {
		t.Fatal(err)
	}
	return New(coll)
}

func get(t testing.TB, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON from %s: %v\n%s", path, err, rec.Body.String())
	}
	return rec, body
}

func TestHealth(t *testing.T) {
	rec, body := get(t, testServer(t), "/healthz")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health = %d %v", rec.Code, body)
	}
	if body["documents"].(float64) != 1 {
		t.Fatalf("documents = %v", body["documents"])
	}
}

func TestListDocs(t *testing.T) {
	rec, body := get(t, testServer(t), "/api/v1/docs")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	docs := body["documents"].([]any)
	if len(docs) != 1 {
		t.Fatalf("docs = %v", docs)
	}
	first := docs[0].(map[string]any)
	if first["name"] != "figure1.xml" || first["nodes"].(float64) != 82 {
		t.Fatalf("doc = %v", first)
	}
}

func TestSearchEndpoint(t *testing.T) {
	s := testServer(t)
	rec, _ := get(t, s, "/api/v1/search?q=xquery+optimization&filter=size%3C%3D3")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, rec.Body.String())
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 4 || len(resp.Hits) != 4 {
		t.Fatalf("hits = %d/%d, want 4", len(resp.Hits), resp.Total)
	}
	if resp.Strategy != "auto" {
		t.Fatalf("strategy = %q", resp.Strategy)
	}
	for _, h := range resp.Hits {
		if h.Document != "figure1.xml" || h.Size < 1 || len(h.Nodes) != h.Size {
			t.Fatalf("hit = %+v", h)
		}
	}
	// Top hit carries text from the optimization subsection.
	if !strings.Contains(strings.ToLower(resp.Hits[0].Snippet), "optimization") {
		t.Fatalf("snippet = %q", resp.Hits[0].Snippet)
	}
}

func TestSearchLimit(t *testing.T) {
	s := testServer(t)
	rec, _ := get(t, s, "/api/v1/search?q=xquery+optimization&filter=size%3C%3D3&limit=2")
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Hits) != 2 || resp.Total != 4 {
		t.Fatalf("limit ignored: %d/%d", len(resp.Hits), resp.Total)
	}
}

func TestSearchErrors(t *testing.T) {
	s := testServer(t)
	cases := []string{
		"/api/v1/search",                          // missing q
		"/api/v1/search?q=x&filter=bogus%3C%3D3",  // bad filter
		"/api/v1/search?q=x&strategy=warp-drive",  // bad strategy
		"/api/v1/search?q=x&limit=zero",           // bad limit
		"/api/v1/search?q=x&limit=-3",             // bad limit
		"/api/v1/explain",                         // missing q
		"/api/v1/explain?q=x&strategy=warp-drive", // bad strategy
	}
	for _, path := range cases {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s → %d, want 400", path, rec.Code)
		}
		if body["error"] == nil {
			t.Errorf("%s → missing error envelope", path)
		}
	}
}

func TestAddDocEndpoint(t *testing.T) {
	s := testServer(t)
	body := `{"name":"added.xml","xml":"<doc><par>xquery optimization together</par></doc>"}`
	req := httptest.NewRequest(http.MethodPost, "/api/v1/docs", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("code = %d: %s", rec.Code, rec.Body.String())
	}
	// The new document is searchable.
	rec2, _ := get(t, s, "/api/v1/search?q=xquery+optimization&filter=size%3C%3D3")
	var resp SearchResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range resp.Hits {
		if h.Document == "added.xml" {
			found = true
		}
	}
	if !found {
		t.Fatal("added document missing from search results")
	}
}

func TestAddDocErrors(t *testing.T) {
	s := testServer(t)
	cases := []string{
		`not json`,
		`{"name":"","xml":"<a/>"}`,
		`{"name":"x.xml","xml":""}`,
		`{"name":"x.xml","xml":"<unclosed"}`,
		`{"name":"figure1.xml","xml":"<a/>"}`, // duplicate
	}
	for _, body := range cases {
		req := httptest.NewRequest(http.MethodPost, "/api/v1/docs", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q → %d, want 400", body, rec.Code)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/v1/explain?q=xquery+optimization&filter=size%3C%3D3&strategy=push-down")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	logical := body["logical"].(string)
	physical := body["physical"].(string)
	if !strings.Contains(logical, "⋈*") {
		t.Fatalf("logical plan = %q", logical)
	}
	if !strings.Contains(physical, "σ size<=3") {
		t.Fatalf("physical plan = %q", physical)
	}
}

func TestMethodRouting(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodDelete, "/api/v1/docs", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Fatalf("DELETE /api/v1/docs = %d", rec.Code)
	}
}

func TestNewNilCollection(t *testing.T) {
	s := New(nil)
	rec, body := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || body["documents"].(float64) != 0 {
		t.Fatalf("nil-collection server broken: %d %v", rec.Code, body)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d", rec.Code)
	}
	if body["documents"].(float64) != 1 || body["nodes"].(float64) != 82 {
		t.Fatalf("stats = %v", body)
	}
	if body["postings"].(float64) <= 0 {
		t.Fatalf("postings = %v", body["postings"])
	}
}

func TestRemoveDocEndpoint(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodDelete, "/api/v1/docs/figure1.xml", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete = %d: %s", rec.Code, rec.Body.String())
	}
	// Gone from the listing.
	_, body := get(t, s, "/api/v1/docs")
	if body["documents"] != nil {
		t.Fatalf("documents after delete = %v", body["documents"])
	}
	// Second delete 404s.
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest(http.MethodDelete, "/api/v1/docs/figure1.xml", nil))
	if rec2.Code != http.StatusNotFound {
		t.Fatalf("second delete = %d", rec2.Code)
	}
}

func TestSearchWithDisjunctionOverHTTP(t *testing.T) {
	s := testServer(t)
	rec, _ := get(t, s, "/api/v1/search?q=xquery+rewriting%7Coptimization&filter=size%3C%3D3")
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d: %s", rec.Code, rec.Body.String())
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 4 {
		t.Fatalf("total = %d, want 4", resp.Total)
	}
	// Disjunctive hits must carry real (non-zero) scores.
	if resp.Hits[0].Score <= 0 {
		t.Fatalf("top score = %v", resp.Hits[0].Score)
	}
}
