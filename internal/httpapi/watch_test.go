package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/docgen"
	"repro/internal/obs"
	"repro/internal/standing"
)

func postJSON(t testing.TB, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func createWatch(t testing.TB, s *Server) (id string, seq uint64) {
	t.Helper()
	rec := postJSON(t, s, "/api/v1/watch", `{"query":"xquery optimization","filter":"size<=3"}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("watch create = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		ID      string `json:"id"`
		Seq     uint64 `json:"seq"`
		Matches int    `json:"matches"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID == "" {
		t.Fatalf("create body missing id: %s", rec.Body)
	}
	return resp.ID, resp.Seq
}

func drainWatch(t testing.TB, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Watch().Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestWatchLifecycleHTTP drives the whole subscription life through the
// public surface: register, snapshot, delta on ingest, resume via
// ?since, cancel.
func TestWatchLifecycleHTTP(t *testing.T) {
	s := testServer(t)
	id, seq := createWatch(t, s)
	if seq != 0 {
		t.Fatalf("fresh watch seq = %d, want 0", seq)
	}

	// The listing shows it.
	rec, body := get(t, s, "/api/v1/watch")
	if rec.Code != http.StatusOK {
		t.Fatalf("list = %d", rec.Code)
	}
	subs := body["subscriptions"].([]any)
	if len(subs) != 1 || subs[0].(map[string]any)["id"] != id {
		t.Fatalf("list = %v", body)
	}
	if subs[0].(map[string]any)["matches"].(float64) != 4 {
		t.Fatalf("figure 1 standing query must materialize 4 matches: %v", subs[0])
	}

	// Ingest a matching document; the watcher gets exactly one delta.
	if rec := postJSON(t, s, "/api/v1/docs",
		`{"name":"w.xml","xml":"<doc><par>xquery optimization watch probe</par></doc>"}`); rec.Code != http.StatusCreated {
		t.Fatalf("add = %d: %s", rec.Code, rec.Body)
	}
	drainWatch(t, s)
	rec, body = get(t, s, "/api/v1/watch/"+id+"?since=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("poll = %d: %s", rec.Code, rec.Body)
	}
	events := body["events"].([]any)
	if len(events) != 1 {
		t.Fatalf("events = %v", events)
	}
	ev := events[0].(map[string]any)
	if ev["type"] != "delta" || ev["doc"] != "w.xml" || len(ev["added"].([]any)) == 0 {
		t.Fatalf("delta = %v", ev)
	}
	newSeq := uint64(body["seq"].(float64))

	// Resuming past the delta returns nothing.
	_, body = get(t, s, fmt.Sprintf("/api/v1/watch/%s?since=%d", id, newSeq))
	if events := body["events"].([]any); len(events) != 0 {
		t.Fatalf("resume events = %v", events)
	}

	// ?snapshot=1 serves the materialized view including the new doc.
	_, body = get(t, s, "/api/v1/watch/"+id+"?snapshot=1")
	if body["matches"].(float64) != 5 {
		t.Fatalf("snapshot matches = %v, want 5", body["matches"])
	}

	// Cancel; the id is gone from every endpoint.
	req := httptest.NewRequest(http.MethodDelete, "/api/v1/watch/"+id, nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/api/v1/watch/"+id, nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("second delete = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/watch/"+id, nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("poll after delete = %d", rec.Code)
	}
}

// TestWatchLongPollWait checks ?wait= holds the request until an event
// arrives instead of busy-polling.
func TestWatchLongPollWait(t *testing.T) {
	s := testServer(t)
	id, _ := createWatch(t, s)

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/watch/"+id+"?since=0&wait=10s", nil))
		done <- rec
	}()
	time.Sleep(20 * time.Millisecond) // let the poller park
	if rec := postJSON(t, s, "/api/v1/docs",
		`{"name":"late.xml","xml":"<doc><par>xquery optimization late arrival</par></doc>"}`); rec.Code != http.StatusCreated {
		t.Fatalf("add = %d", rec.Code)
	}
	select {
	case rec := <-done:
		if rec.Code != http.StatusOK {
			t.Fatalf("held poll = %d: %s", rec.Code, rec.Body)
		}
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatal(err)
		}
		if events := body["events"].([]any); len(events) != 1 {
			t.Fatalf("held poll events = %v", events)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("held poll never returned")
	}

	// An expired hold answers 200 with no events, not an error.
	rec := httptest.NewRecorder()
	start := time.Now()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/api/v1/watch/%s?since=%d&wait=30ms", id, s.Watch().List()[0].Seq()), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("expired hold = %d: %s", rec.Code, rec.Body)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("hold returned before the wait elapsed")
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if events := body["events"].([]any); len(events) != 0 {
		t.Fatalf("expired hold events = %v", events)
	}
}

// TestWatchSSEStream checks the happy-path stream: hello frame, then
// one named event per delta with the sequence number as the SSE id.
func TestWatchSSEStream(t *testing.T) {
	s := testServer(t)
	id, _ := createWatch(t, s)
	if rec := postJSON(t, s, "/api/v1/docs",
		`{"name":"sse.xml","xml":"<doc><par>xquery optimization streamed</par></doc>"}`); rec.Code != http.StatusCreated {
		t.Fatalf("add = %d", rec.Code)
	}
	drainWatch(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/api/v1/watch/"+id+"?since=0", nil).WithContext(ctx)
	req.Header.Set("Accept", "text/event-stream")
	rec := httptest.NewRecorder()
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	s.ServeHTTP(rec, req)

	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{"event: hello\n", "event: delta\nid: 1\n", `"doc":"sse.xml"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("stream missing %q:\n%s", want, out)
		}
	}
}

// TestWatchSSESlowConsumerReset pins the backpressure contract: a
// consumer resuming from a seq that has fallen off the bounded ring
// gets one reset event carrying the snapshot and the stream ends —
// the server never buffers unboundedly and never blocks ingest.
func TestWatchSSESlowConsumerReset(t *testing.T) {
	coll := collection.New()
	if err := coll.Add(docgen.FigureOne()); err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(coll, Config{WatchBuffer: 2})
	id, _ := createWatch(t, s)
	for i := 0; i < 5; i++ {
		if rec := postJSON(t, s, "/api/v1/docs",
			fmt.Sprintf(`{"name":"s%d.xml","xml":"<doc><par>xquery optimization %d</par></doc>"}`, i, i)); rec.Code != http.StatusCreated {
			t.Fatalf("add %d = %d", i, rec.Code)
		}
	}
	drainWatch(t, s)

	// since=0 predates the 2-event ring: the server re-syncs and hangs up
	// without any goroutine needing to cancel the request.
	req := httptest.NewRequest(http.MethodGet, "/api/v1/watch/"+id+"?since=0", nil)
	req.Header.Set("Accept", "text/event-stream")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req) // returns: the reset terminates the stream

	out := rec.Body.String()
	if !strings.Contains(out, "event: reset\n") {
		t.Fatalf("no reset event:\n%s", out)
	}
	if !strings.Contains(out, "id: 5\n") {
		t.Fatalf("reset must carry the current seq:\n%s", out)
	}
	// The reset snapshot holds the full 9-match view (4 + 5 planted).
	var reset struct {
		Hits []standing.Hit `json:"hits"`
	}
	data := out[strings.LastIndex(out, "data: ")+len("data: "):]
	if err := json.Unmarshal([]byte(strings.TrimSpace(data)), &reset); err != nil {
		t.Fatal(err)
	}
	if len(reset.Hits) != 9 {
		t.Fatalf("reset snapshot = %d hits, want 9", len(reset.Hits))
	}
}

// TestWatchSSEErrorGolden is the golden test for the streaming error
// contract: errors on an SSE request arrive as a terminal `error`
// event whose data is the exact v1 envelope.
func TestWatchSSEErrorGolden(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/api/v1/watch/nope", nil)
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set(RequestIDHeader, "req-golden")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)

	if rec.Code != http.StatusNotFound {
		t.Fatalf("code = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	golden := "event: error\n" +
		`data: {"error":{"code":"not_found","message":"no subscription \"nope\"","request_id":"req-golden"}}` +
		"\n\n"
	if got := rec.Body.String(); got != golden {
		t.Fatalf("stream error frame:\n got: %q\nwant: %q", got, golden)
	}

	// The same failure without Accept: text/event-stream stays plain JSON.
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/api/v1/watch/nope", nil))
	var env ErrorEnvelope
	if err := json.Unmarshal(rec2.Body.Bytes(), &env); err != nil {
		t.Fatalf("non-SSE error not an envelope: %v\n%s", err, rec2.Body)
	}
	if env.Error.Code != "not_found" {
		t.Fatalf("code = %q", env.Error.Code)
	}
}

// TestWatchCreateErrors covers the 4xx surface of POST /watch.
func TestWatchCreateErrors(t *testing.T) {
	s := testServer(t)
	for _, body := range []string{
		`not json`,
		`{"query":""}`,
		`{"query":"x","filter":"bogus<=3"}`,
		`{"query":"x","strategy":"warp-drive"}`,
	} {
		if rec := postJSON(t, s, "/api/v1/watch", body); rec.Code != http.StatusBadRequest {
			t.Errorf("body %q → %d, want 400", body, rec.Code)
		}
	}
}

// TestWatchSubscriptionLimit checks the cap answers 429 + Retry-After.
func TestWatchSubscriptionLimit(t *testing.T) {
	coll := collection.New()
	if err := coll.Add(docgen.FigureOne()); err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(coll, Config{MaxSubscriptions: 1})
	createWatch(t, s)
	rec := postJSON(t, s, "/api/v1/watch", `{"query":"other terms"}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit = %d: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "subscription_limit" {
		t.Fatalf("code = %q", env.Error.Code)
	}
}

// TestWatchDisabled checks a negative MaxSubscriptions removes the
// watch surface entirely.
func TestWatchDisabled(t *testing.T) {
	coll := collection.New()
	s := NewWithConfig(coll, Config{MaxSubscriptions: -1})
	if rec := postJSON(t, s, "/api/v1/watch", `{"query":"x"}`); rec.Code != http.StatusNotFound {
		t.Fatalf("watch on disabled server = %d, want 404", rec.Code)
	}
	if s.Watch() != nil {
		t.Fatal("registry must be nil when disabled")
	}
}

// TestRouteManifest checks GET /api/v1 describes the served surface
// from the same table that mounts it.
func TestRouteManifest(t *testing.T) {
	s := testServer(t)
	rec, body := get(t, s, "/api/v1")
	if rec.Code != http.StatusOK {
		t.Fatalf("manifest = %d", rec.Code)
	}
	if body["service"] != "xfrag" || body["version"] != "v1" || body["legacy_api"] != false {
		t.Fatalf("manifest header = %v", body)
	}
	routes := body["routes"].([]any)
	index := map[string]map[string]any{}
	for _, r := range routes {
		m := r.(map[string]any)
		index[m["method"].(string)+" "+m["path"].(string)] = m
	}
	for _, want := range []string{
		"GET /api/v1/search", "POST /api/v1/docs", "DELETE /api/v1/docs/{name}",
		"POST /api/v1/watch", "GET /api/v1/watch/{id}", "DELETE /api/v1/watch/{id}",
	} {
		if index[want] == nil {
			t.Fatalf("manifest missing %q: %v", want, index)
		}
		if index[want]["deprecated"] != false {
			t.Fatalf("%s marked deprecated", want)
		}
	}
	// Params are documented for search.
	if params := index["GET /api/v1/search"]["params"].([]any); len(params) == 0 {
		t.Fatal("search route has no documented params")
	}
	// No legacy rows without the opt-in.
	for key := range index {
		if !strings.Contains(key, "/api/v1") {
			t.Fatalf("legacy row %q present without -legacy-api", key)
		}
	}

	// With the opt-in, legacy rows appear, deprecated, with successors.
	ls := legacyServer(t)
	_, lbody := get(t, ls, "/api/v1")
	if lbody["legacy_api"] != true {
		t.Fatalf("legacy manifest header = %v", lbody["legacy_api"])
	}
	found := false
	for _, r := range lbody["routes"].([]any) {
		m := r.(map[string]any)
		if m["path"] == "/api/search" {
			found = true
			if m["deprecated"] != true || m["successor"] != "/api/v1/search" {
				t.Fatalf("legacy search row = %v", m)
			}
		}
	}
	if !found {
		t.Fatal("legacy search row missing from opted-in manifest")
	}
}

// TestSearchFastPathServesMaterializedView checks the result-cache
// redesign: a search matching a standing query is answered from the
// materialized view (counted), and the view keeps tracking ingest —
// precise invalidation instead of drop-everything.
func TestSearchFastPathServesMaterializedView(t *testing.T) {
	s := testServer(t)
	createWatch(t, s)
	m := s.coll.Metrics()

	var resp SearchResponse
	rec, _ := get(t, s, "/api/v1/search?q=xquery+optimization&filter=size%3C%3D3")
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 4 {
		t.Fatalf("total = %d", resp.Total)
	}
	if m.Counter(obs.MStandingCacheHits).Value() != 1 {
		t.Fatalf("standing cache hits = %d, want 1", m.Counter(obs.MStandingCacheHits).Value())
	}

	// Ingest; the view updates; the fast path serves the fresh answer.
	if rec := postJSON(t, s, "/api/v1/docs",
		`{"name":"fresh.xml","xml":"<doc><par>xquery optimization fresh</par></doc>"}`); rec.Code != http.StatusCreated {
		t.Fatalf("add = %d", rec.Code)
	}
	drainWatch(t, s)
	rec, _ = get(t, s, "/api/v1/search?q=xquery+optimization&filter=size%3C%3D3")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Total != 5 {
		t.Fatalf("post-ingest total = %d, want 5 (stale view?)", resp.Total)
	}
	if m.Counter(obs.MStandingCacheHits).Value() != 2 {
		t.Fatalf("standing cache hits = %d, want 2", m.Counter(obs.MStandingCacheHits).Value())
	}

	// A different query misses the fast path and still works.
	rec, _ = get(t, s, "/api/v1/search?q=xquery+optimization")
	if rec.Code != http.StatusOK {
		t.Fatalf("non-standing search = %d", rec.Code)
	}
	if m.Counter(obs.MStandingCacheHits).Value() != 2 {
		t.Fatal("non-standing query must not count a view hit")
	}
}

// TestWatchOnReplica checks a standing query registered on a read
// replica is fed by the replication stream: a write to the primary
// surfaces as a delta on the replica's watch.
func TestWatchOnReplica(t *testing.T) {
	p := newReplicatedPair(t, 0)
	p.waitSynced(t)

	// Registering a watch is a read-side operation: allowed on replicas.
	id, _ := createWatch(t, p.replica)

	// Write to the primary; the record replicates and the replica's
	// registry turns it into a delta.
	if rec := postJSON(t, p.primary, "/api/v1/docs",
		`{"name":"repl.xml","xml":"<doc><par>xquery optimization replicated</par></doc>"}`); rec.Code != http.StatusCreated {
		t.Fatalf("primary add = %d: %s", rec.Code, rec.Body)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		rec, body := get(t, p.replica, "/api/v1/watch/"+id+"?since=0")
		if rec.Code != http.StatusOK {
			t.Fatalf("replica poll = %d: %s", rec.Code, rec.Body)
		}
		if events := body["events"].([]any); len(events) > 0 {
			ev := events[0].(map[string]any)
			if ev["type"] != "delta" || ev["doc"] != "repl.xml" {
				t.Fatalf("replica delta = %v", ev)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replicated write never reached the replica's watch")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
