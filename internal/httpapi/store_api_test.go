package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

func storeServer(t *testing.T, opts store.Options) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close(context.Background()) })
	return NewWithStore(st, nil), st
}

func postDoc(t *testing.T, s *Server, path, name, xml string) *httptest.ResponseRecorder {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"xml":%q}`, name, xml)
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func TestAsyncIngestOverHTTP(t *testing.T) {
	s, st := storeServer(t, store.Options{Shards: 4, IngestWorkers: 2})
	w := postDoc(t, s, "/api/v1/docs?async=1", "async.xml", "<doc><par>xquery async ingest</par></doc>")
	if w.Code != http.StatusAccepted {
		t.Fatalf("async add: %d %s", w.Code, w.Body)
	}
	var accepted struct {
		Job      string `json:"job"`
		Document string `json:"document"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Job == "" || accepted.Document != "async.xml" {
		t.Fatalf("bad 202 body: %s", w.Body)
	}

	// Poll the job endpoint until the document lands.
	var job store.Job
	deadline := time.Now().Add(10 * time.Second)
	for {
		req := httptest.NewRequest("GET", "/api/v1/jobs/"+accepted.Job, nil)
		jw := httptest.NewRecorder()
		s.ServeHTTP(jw, req)
		if jw.Code != http.StatusOK {
			t.Fatalf("job status: %d %s", jw.Code, jw.Body)
		}
		if err := json.Unmarshal(jw.Body.Bytes(), &job); err != nil {
			t.Fatal(err)
		}
		if job.Status == store.JobDone || job.Status == store.JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %s", job.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if job.Status != store.JobDone {
		t.Fatalf("job failed: %+v", job)
	}
	if st.Len() != 1 {
		t.Fatalf("store has %d docs, want 1", st.Len())
	}

	// The document is searchable through the deadline-aware path.
	req := httptest.NewRequest("GET", "/api/v1/search?q=xquery+async", nil)
	sw := httptest.NewRecorder()
	s.ServeHTTP(sw, req)
	if sw.Code != http.StatusOK {
		t.Fatalf("search: %d %s", sw.Code, sw.Body)
	}
	var res SearchResponse
	if err := json.Unmarshal(sw.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 || len(res.Hits) == 0 || res.Hits[0].Document != "async.xml" {
		t.Fatalf("async doc not found: %s", sw.Body)
	}
}

func TestAsyncRequiresStore(t *testing.T) {
	s := New(nil)
	w := postDoc(t, s, "/api/v1/docs?async=1", "a.xml", "<a>x</a>")
	if w.Code != http.StatusBadRequest {
		t.Fatalf("async on collection-backed server: %d, want 400", w.Code)
	}
	req := httptest.NewRequest("GET", "/api/v1/jobs/job-1", nil)
	jw := httptest.NewRecorder()
	s.ServeHTTP(jw, req)
	if jw.Code != http.StatusNotFound {
		t.Fatalf("jobs on collection-backed server: %d, want 404", jw.Code)
	}
}

func TestJobNotFound(t *testing.T) {
	s, _ := storeServer(t, store.Options{Shards: 2})
	req := httptest.NewRequest("GET", "/api/v1/jobs/job-42", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", w.Code)
	}
}

func TestStoreBackedCRUDAndStats(t *testing.T) {
	s, _ := storeServer(t, store.Options{Shards: 4})
	for i := 0; i < 6; i++ {
		w := postDoc(t, s, "/api/v1/docs", fmt.Sprintf("d%d.xml", i), "<doc><par>xquery shard test</par></doc>")
		if w.Code != http.StatusCreated {
			t.Fatalf("add %d: %d %s", i, w.Code, w.Body)
		}
	}
	// Duplicate rejected.
	if w := postDoc(t, s, "/api/v1/docs", "d0.xml", "<a>x</a>"); w.Code != http.StatusBadRequest {
		t.Fatalf("duplicate add: %d", w.Code)
	}
	// List sees all six.
	req := httptest.NewRequest("GET", "/api/v1/docs", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var list struct {
		Documents []DocInfo `json:"documents"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Documents) != 6 {
		t.Fatalf("list: %d docs, want 6", len(list.Documents))
	}
	// Remove one.
	req = httptest.NewRequest("DELETE", "/api/v1/docs/d3.xml", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("remove: %d %s", w.Code, w.Body)
	}
	req = httptest.NewRequest("DELETE", "/api/v1/docs/d3.xml", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Fatalf("double remove: %d", w.Code)
	}
	// Health reports the store fields.
	req = httptest.NewRequest("GET", "/healthz", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var health map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["documents"].(float64) != 5 || health["shards"].(float64) != 4 {
		t.Fatalf("health: %s", w.Body)
	}
	// Stats aggregates across shards.
	req = httptest.NewRequest("GET", "/api/v1/stats", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var stats map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["documents"].(float64) != 5 {
		t.Fatalf("stats: %s", w.Body)
	}
}

func TestStoreMetricsEndpoint(t *testing.T) {
	s, _ := storeServer(t, store.Options{Shards: 2})
	if w := postDoc(t, s, "/api/v1/docs", "m.xml", "<doc><par>metric doc</par></doc>"); w.Code != http.StatusCreated {
		t.Fatalf("add: %d", w.Code)
	}
	req := httptest.NewRequest("GET", "/api/v1/search?q=metric", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("search: %d", w.Code)
	}

	req = httptest.NewRequest("GET", "/api/v1/metrics", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	var body map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if _, ok := body["store_documents"]; !ok {
		t.Fatalf("no store_documents gauge in %s", w.Body)
	}
	shards, ok := body["shards"].([]any)
	if !ok || len(shards) != 2 {
		t.Fatalf("metrics missing per-shard registries: %s", w.Body)
	}

	req = httptest.NewRequest("GET", "/api/v1/metrics?format=prom", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	prom := w.Body.String()
	// Only the shard holding the document has recorded anything (an
	// empty registry exports no series), so assert on the store-level
	// gauges plus the presence of a shard-prefixed series. The planner
	// series exist from open (counters) and first mutation (epoch).
	for _, want := range []string{
		"# TYPE xfrag_store_documents gauge",
		"# TYPE xfrag_ingest_queue_depth gauge",
		"# TYPE xfrag_planner_plan_misses_total counter",
		"# TYPE xfrag_planner_plan_hits_total counter",
		"# TYPE xfrag_planner_replans_total counter",
		"planner_stats_epoch",
		"xfrag_shard",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom)
		}
	}
}

// TestExplainPlanOverHTTP checks a store-backed explain reports the
// adaptive planner's per-shard compiled plan: strategies, statistics
// estimates, join order and cache outcome.
func TestExplainPlanOverHTTP(t *testing.T) {
	s, _ := storeServer(t, store.Options{Shards: 2})
	if w := postDoc(t, s, "/api/v1/docs", "p.xml", "<doc><sec>xquery plans</sec><sec>xquery costs</sec></doc>"); w.Code != http.StatusCreated {
		t.Fatalf("add: %d", w.Code)
	}
	rec, body := get(t, s, "/api/v1/explain?q=xquery+plans")
	if rec.Code != http.StatusOK {
		t.Fatalf("explain: %d", rec.Code)
	}
	plans, ok := body["plan"].([]any)
	if !ok || len(plans) != 2 {
		t.Fatalf("explain plan section = %v", body["plan"])
	}
	first := plans[0].(map[string]any)
	if first["outcome"] != "miss" {
		t.Fatalf("first explain outcome = %v, want miss", first["outcome"])
	}
	strats, ok := first["set_strategies"].([]any)
	if !ok || len(strats) != 2 {
		t.Fatalf("set_strategies = %v", first["set_strategies"])
	}
	if _, ok := first["rf_estimates"].([]any); !ok {
		t.Fatalf("rf_estimates = %v", first["rf_estimates"])
	}
	if _, ok := first["physical"].(string); !ok {
		t.Fatalf("physical = %v", first["physical"])
	}
	// Same shape again: served from the plan cache.
	_, body = get(t, s, "/api/v1/explain?q=xquery+plans")
	if out := body["plan"].([]any)[0].(map[string]any)["outcome"]; out != "hit" {
		t.Fatalf("second explain outcome = %v, want hit", out)
	}
}

func TestSearchDeadlineOverHTTP(t *testing.T) {
	s, _ := storeServer(t, store.Options{Shards: 4})
	for i := 0; i < 8; i++ {
		if w := postDoc(t, s, "/api/v1/docs", fmt.Sprintf("t%d.xml", i), "<doc><par>timeout probe</par></doc>"); w.Code != http.StatusCreated {
			t.Fatalf("add: %d", w.Code)
		}
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	req := httptest.NewRequest("GET", "/api/v1/search?q=timeout", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("expired-deadline search: %d %s", w.Code, w.Body)
	}
	var res SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 || len(res.Errors) != 8 {
		t.Fatalf("want 0 hits and 8 per-document errors, got %d/%d: %s", len(res.Hits), len(res.Errors), w.Body)
	}
}
