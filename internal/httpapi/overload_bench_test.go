package httpapi

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/docgen"
)

// BenchmarkOverloadShedding drives the server far past its admission
// capacity and measures the overload contract: a shed request must be
// near-free (a non-blocking semaphore probe, a queue probe, a JSON
// envelope) so refused load can't take the server down, while
// admitted requests evaluate normally. The custom metrics report the
// shed fraction and the mean cost of one shed.
func BenchmarkOverloadShedding(b *testing.B) {
	coll := collection.New()
	if err := coll.Add(docgen.FigureOne()); err != nil {
		b.Fatal(err)
	}
	s := NewWithConfig(coll, Config{
		MaxConcurrent: 2,
		MaxQueue:      2,
		QueueWait:     time.Millisecond,
	})
	var served, shed atomic.Int64
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
				"/api/v1/search?q=xquery+optimization&filter=size<=3", nil))
			switch rec.Code {
			case http.StatusOK:
				served.Add(1)
			case http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				b.Fatalf("unexpected status %d", rec.Code)
			}
		}
	})
	b.StopTimer()
	total := served.Load() + shed.Load()
	if total > 0 {
		b.ReportMetric(float64(shed.Load())/float64(total), "shed-fraction")
	}
	b.ReportMetric(float64(served.Load()), "served")
}
