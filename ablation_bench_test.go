package xfrag

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - O(1) sparse-table LCA vs. Dewey common-prefix vs. parent
//     walking (the relational substrate's method);
//   - semi-naive fixed-point iteration vs. the full re-join the
//     dynamic-programming expansion of Section 3.1.1 suggests;
//   - push-down filtering inside fixed points vs. filtering after.
//
// Run with: go test -bench=Ablation -benchmem

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/docgen"
	"repro/internal/filter"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/xmltree"
)

func ablationDoc(b *testing.B) *xmltree.Document {
	b.Helper()
	d, err := docgen.Generate(docgen.Config{
		Seed: 13, Sections: 10, MeanFanout: 5, Depth: 4, VocabSize: 200,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkAblationLCA compares the three LCA implementations on the
// same random query pairs.
func BenchmarkAblationLCA(b *testing.B) {
	d := ablationDoc(b)
	store := relstore.FromDocument(d)
	rng := rand.New(rand.NewSource(17))
	pairs := make([][2]xmltree.NodeID, 1024)
	for i := range pairs {
		pairs[i] = [2]xmltree.NodeID{
			xmltree.NodeID(rng.Intn(d.Len())),
			xmltree.NodeID(rng.Intn(d.Len())),
		}
	}
	d.LCADewey(0, 0) // force label build outside the timer
	b.Run("sparse-table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			_ = d.LCA(p[0], p[1])
		}
	})
	b.Run("dewey-prefix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			_ = d.LCADewey(p[0], p[1])
		}
	})
	b.Run("parent-walk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			_ = store.LCA(p[0], p[1])
		}
	})
}

// fullRejoinFixedPoint is the pre-semi-naive iteration: every round
// re-joins the whole accumulated set against the base and checks for
// stability — the literal dynamic-programming reading of
// Section 3.1.1, kept here purely as the ablation baseline.
func fullRejoinFixedPoint(f *core.Set) *core.Set {
	acc := f.Clone()
	for {
		next := core.PairwiseJoin(acc, f)
		if next.Equal(acc) {
			return acc
		}
		acc = next
	}
}

// BenchmarkAblationSemiNaive quantifies the semi-naive frontier
// optimization in the fixed-point computation.
func BenchmarkAblationSemiNaive(b *testing.B) {
	d := ablationDoc(b)
	rng := rand.New(rand.NewSource(23))
	F := core.NewSet()
	for F.Len() < 8 {
		F.Add(core.NodeFragment(d, xmltree.NodeID(rng.Intn(d.Len()))))
	}
	want := core.FixedPointNaive(F)
	if !fullRejoinFixedPoint(F).Equal(want) {
		b.Fatal("ablation baseline disagrees")
	}
	b.Run("semi-naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.FixedPointNaive(F)
		}
	})
	b.Run("full-rejoin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fullRejoinFixedPoint(F)
		}
	})
}

// BenchmarkAblationPushDownDepth compares filtering inside the
// fixed-point iteration (Theorem 3 push-down) against computing the
// unfiltered fixed point and selecting afterwards.
func BenchmarkAblationPushDownDepth(b *testing.B) {
	d := ablationDoc(b)
	rng := rand.New(rand.NewSource(29))
	F := core.NewSet()
	for F.Len() < 9 {
		F.Add(core.NodeFragment(d, xmltree.NodeID(rng.Intn(d.Len()))))
	}
	pred := func(f core.Fragment) bool { return f.Size() <= 4 }
	want := core.FixedPointNaive(F).Select(pred)
	if !core.FilteredFixedPoint(F, pred).Equal(want) {
		b.Fatal("push-down disagrees with select-after")
	}
	b.Run("filter-inside", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.FilteredFixedPoint(F, pred)
		}
	})
	b.Run("filter-after", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.FixedPointNaive(F).Select(pred)
		}
	})
}

// BenchmarkAblationSubsetCheck compares the merge-based SubsetOf with
// a map-based alternative, justifying the sorted-slice representation.
func BenchmarkAblationSubsetCheck(b *testing.B) {
	d := ablationDoc(b)
	rng := rand.New(rand.NewSource(31))
	big := core.NodeFragment(d, 0)
	for i := 0; i < 40; i++ {
		big = core.Join(big, core.NodeFragment(d, xmltree.NodeID(rng.Intn(d.Len()))))
	}
	small := core.NodeFragment(d, big.IDs()[len(big.IDs())/2])
	mapSubset := func(a, f core.Fragment) bool {
		set := make(map[xmltree.NodeID]bool, f.Size())
		for _, id := range f.IDs() {
			set[id] = true
		}
		for _, id := range a.IDs() {
			if !set[id] {
				return false
			}
		}
		return true
	}
	b.Run("merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !small.SubsetOf(big) {
				b.Fatal("wrong")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !mapSubset(small, big) {
				b.Fatal("wrong")
			}
		}
	})
}

// BenchmarkAblationParallel measures worker scaling of the push-down
// evaluation on a workload large enough to amortize goroutine fan-out.
func BenchmarkAblationParallel(b *testing.B) {
	d, err := docgen.Generate(docgen.Config{
		Seed: 37, Sections: 10, MeanFanout: 5, Depth: 3, VocabSize: 500,
		Plant: map[string]int{"parterma": 24, "partermb": 24},
	})
	if err != nil {
		b.Fatal(err)
	}
	x := index.New(d)
	q := query.MustNew([]string{"parterma", "partermb"}, filter.MaxSize(6))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := query.Evaluate(x, q, query.Options{Strategy: cost.PushDown, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
