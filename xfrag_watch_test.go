package xfrag_test

import (
	"context"
	"testing"
	"time"

	xfrag "repro"
)

func TestFacadeWatch(t *testing.T) {
	coll := xfrag.NewCollection()
	if err := coll.Add(xfrag.FigureOneDocument()); err != nil {
		t.Fatal(err)
	}
	w := xfrag.NewWatcher(coll, xfrag.WithMaxSubscriptions(2), xfrag.WithWatchBuffer(8))
	defer w.Close()

	sub, err := xfrag.Watch(w, "xquery optimization", "size<=3")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Matches() != 4 {
		t.Fatalf("figure 1 standing query materialized %d matches, want 4", sub.Matches())
	}

	// Ingest a matching document and wait for its delta.
	doc, err := xfrag.ParseDocument("facade.xml", "<doc><par>xquery optimization facade</par></doc>")
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Add(doc); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events, seq, err := xfrag.WaitWatch(ctx, sub, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Doc != "facade.xml" || len(events[0].Added) == 0 {
		t.Fatalf("events = %+v", events)
	}
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}

	// The cap holds, with the re-exported error.
	if _, err := xfrag.Watch(w, "a", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := xfrag.Watch(w, "b", ""); err != xfrag.ErrTooManySubscriptions {
		t.Fatalf("over-cap watch = %v", err)
	}
}
