package xfrag_test

// Scenario test: a simulated user session across a heterogeneous
// corpus, exercising the public API the way a deployed service would
// — presets, caching, phrases, disjunctions, structural filters —
// with global invariants asserted on every answer.

import (
	"fmt"
	"testing"

	xfrag "repro"
)

func TestScenarioSession(t *testing.T) {
	coll := xfrag.NewCollection()

	// Heterogeneous corpus: the paper's document, the play, and two
	// generated genres with planted topics.
	if err := coll.Add(xfrag.FigureOneDocument()); err != nil {
		t.Fatal(err)
	}
	play, err := xfrag.Load("testdata/play.xml")
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Add(play.Document()); err != nil {
		t.Fatal(err)
	}
	for i, cfg := range []xfrag.GeneratorConfig{
		{Name: "genre-a.xml", Seed: 11, Sections: 5, MeanFanout: 4, Depth: 3, VocabSize: 500,
			Plant: map[string]int{"topicalpha": 6, "topicbeta": 6}},
		{Name: "genre-b.xml", Seed: 12, Sections: 10, MeanFanout: 5, Depth: 2, VocabSize: 2000,
			Plant: map[string]int{"topicalpha": 4, "topicgamma": 8}},
	} {
		d, err := xfrag.GenerateDocument(cfg)
		if err != nil {
			t.Fatalf("corpus %d: %v", i, err)
		}
		if err := coll.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	if coll.Len() != 4 {
		t.Fatalf("corpus = %d documents", coll.Len())
	}

	session := []struct {
		q, f        string
		wantMinHits int
	}{
		{"xquery optimization", "size<=3", 4},
		{"topicalpha topicbeta", "size<=6", 1},
		{"topicalpha topicgamma", "size<=6", 1},
		{"topicalpha topicbeta|topicgamma", "size<=6", 2},
		{`"rewriting rules" xquery`, "size<=3", 1},
		{"scroll neighbourhood", "size<=6,within=//scene", 1},
		{"keeper archive", "size<=8,height<=3", 1},
		{"topicalpha topicbeta", "size<=6,leaves<=2", 1},
		{"nosuchword anywhere", "size<=4", 0},
	}
	for round := 0; round < 2; round++ { // second round: determinism
		for _, step := range session {
			res, err := coll.Search(step.q, step.f, xfrag.Options{Auto: true})
			if err != nil {
				t.Fatalf("%q/%q: %v", step.q, step.f, err)
			}
			if len(res.Errors) != 0 {
				t.Fatalf("%q/%q: per-document errors %v", step.q, step.f, res.Errors)
			}
			if len(res.Hits) < step.wantMinHits {
				t.Fatalf("%q/%q: %d hits, want >= %d", step.q, step.f, len(res.Hits), step.wantMinHits)
			}
			q, err := xfrag.ParseQuery(step.q, step.f)
			if err != nil {
				t.Fatal(err)
			}
			pred := q.Predicate()
			for _, h := range res.Hits {
				if !pred.Apply(h.Fragment) {
					t.Fatalf("%q/%q: hit %v violates filter", step.q, step.f, h.Fragment)
				}
			}
			// Scores are deterministic and descending.
			for i := 1; i < len(res.Hits); i++ {
				if res.Hits[i-1].Score < res.Hits[i].Score {
					t.Fatalf("%q/%q: score order violated", step.q, step.f)
				}
			}
		}
	}

	// Per-engine caching: repeat queries on one engine, verify hits.
	eng := coll.Engine("figure1.xml")
	eng.EnableCache(16)
	for i := 0; i < 3; i++ {
		if _, err := eng.Query("xquery optimization", "size<=3", xfrag.Options{Auto: true}); err != nil {
			t.Fatal(err)
		}
	}
	if eng.CacheLen() != 1 {
		t.Fatalf("cache len = %d", eng.CacheLen())
	}

	// Document removal mid-session.
	if !coll.Remove("genre-b.xml") {
		t.Fatal("remove failed")
	}
	res, err := coll.Search("topicalpha topicgamma", "size<=6", xfrag.Options{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("removed document still answers: %d hits", len(res.Hits))
	}
}

func TestScenarioDeterministicOrdering(t *testing.T) {
	// The same collection search twice returns byte-identical hit
	// sequences (document, nodes, score).
	coll := xfrag.NewCollection()
	if err := coll.Add(xfrag.FigureOneDocument()); err != nil {
		t.Fatal(err)
	}
	d, err := xfrag.GenerateDocument(xfrag.GeneratorConfig{
		Name: "det.xml", Seed: 33, Sections: 4, MeanFanout: 4, Depth: 2, VocabSize: 100,
		Plant: map[string]int{"xquery": 3, "optimization": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Add(d); err != nil {
		t.Fatal(err)
	}
	fingerprint := func() string {
		res, err := coll.Search("xquery optimization", "size<=5", xfrag.Options{Auto: true})
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, h := range res.Hits {
			s += fmt.Sprintf("%s%v%.6f;", h.Document, h.Fragment.IDs(), h.Score)
		}
		return s
	}
	a, b := fingerprint(), fingerprint()
	if a != b {
		t.Fatalf("non-deterministic hit ordering:\n%s\nvs\n%s", a, b)
	}
}
