// Command xfraggen emits synthetic document-centric XML corpora for
// benchmarking and experimentation (the substitute for the real
// collections the paper never names — it reports no experiments).
//
// Usage:
//
//	xfraggen -sections 6 -fanout 4 -depth 3 -seed 7 > corpus.xml
//	xfraggen -plant "xquery:5,optimization:8" -seed 7 > corpus.xml
//	xfraggen -figure1 > figure1.xml     # the paper's example document
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/docgen"
	"repro/internal/snapshot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xfraggen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		sections = flag.Int("sections", 5, "number of top-level sections")
		fanout   = flag.Int("fanout", 5, "mean fan-out of structural nodes")
		depth    = flag.Int("depth", 3, "structural levels below the root")
		vocab    = flag.Int("vocab", 1000, "distinct filler terms")
		zipf     = flag.Float64("zipf", 1.1, "Zipf skew (> 1)")
		parLen   = flag.Int("parlen", 15, "tokens per paragraph")
		seed     = flag.Int64("seed", 1, "generation seed")
		plant    = flag.String("plant", "", "terms to plant: 'term:count,term:count'")
		figure1  = flag.Bool("figure1", false, "emit the paper's Figure 1 document and exit")
		stats    = flag.Bool("stats", false, "print document statistics to stderr")
		snap     = flag.String("snap", "", "also write a binary snapshot to this path (reload with xfragserver -snapshot)")
	)
	flag.Parse()

	if *figure1 {
		d := docgen.FigureOne()
		if *stats {
			fmt.Fprintf(os.Stderr, "figure1: %d nodes\n", d.Len())
		}
		if *snap != "" {
			if err := snapshot.SaveFile(*snap, d); err != nil {
				return err
			}
		}
		return d.WriteXML(os.Stdout)
	}

	cfg := docgen.Config{
		Seed: *seed, Sections: *sections, MeanFanout: *fanout, Depth: *depth,
		VocabSize: *vocab, ZipfS: *zipf, ParLength: *parLen,
	}
	if *plant != "" {
		cfg.Plant = map[string]int{}
		for _, part := range strings.Split(*plant, ",") {
			term, cntStr, ok := strings.Cut(strings.TrimSpace(part), ":")
			if !ok || term == "" {
				return fmt.Errorf("bad -plant entry %q (want term:count)", part)
			}
			cnt, err := strconv.Atoi(cntStr)
			if err != nil || cnt < 0 {
				return fmt.Errorf("bad -plant count in %q", part)
			}
			cfg.Plant[term] = cnt
		}
	}
	d, err := docgen.Generate(cfg)
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "generated: %d nodes, %d distinct terms, %d term occurrences\n",
			d.Len(), d.Stats().Distinct(), d.Stats().Total())
	}
	if *snap != "" {
		if err := snapshot.SaveFile(*snap, d); err != nil {
			return err
		}
	}
	return d.WriteXML(os.Stdout)
}
