// Command xfrag answers keyword queries over an XML document with the
// fragment algebra.
//
// Usage:
//
//	xfrag -file doc.xml -query "XQuery optimization" -filter "size<=3"
//	xfrag -file doc.xml -query "..." -strategy push-down -stats
//	xfrag -file doc.xml -query "..." -slca            # baseline
//	xfrag -file doc.xml -outline                      # inspect the tree
//	xfrag -paper -query "XQuery optimization" -filter "size<=3" -explain
//
// -paper substitutes the built-in Figure 1 document of the paper for
// -file, so the running example works without any input.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/docgen"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/xmltree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xfrag:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		file      = flag.String("file", "", "XML document to query")
		paper     = flag.Bool("paper", false, "use the paper's Figure 1 document instead of -file")
		keywords  = flag.String("query", "", "query keywords: terms, a|b disjunctions, \"quoted phrases\"")
		filterStr = flag.String("filter", "", "filter spec, e.g. 'size<=3,height<=2'")
		strategy  = flag.String("strategy", "auto", "auto | brute-force | naive | set-reduction | push-down")
		stats     = flag.Bool("stats", false, "print evaluation statistics")
		trace     = flag.Bool("trace", false, "print the per-operator evaluation trace (spans with cardinalities and durations)")
		explain   = flag.Bool("explain", false, "print logical and physical plans")
		slca      = flag.Bool("slca", false, "also print the SLCA/ELCA baseline answers")
		outline   = flag.Bool("outline", false, "print the document outline and exit")
		docstats  = flag.Bool("docstats", false, "print document shape statistics and exit")
		groupsOff = flag.Bool("flat", false, "print a flat fragment list instead of overlap groups")
		workers   = flag.Int("workers", 0, "parallel join workers for push-down (0=sequential, -1=GOMAXPROCS)")
		dotOut    = flag.String("dot", "", "write a Graphviz rendering of the document with answer nodes highlighted to this file")
		repl      = flag.Bool("repl", false, "interactive mode: read queries from stdin ('keywords :: filter' per line)")
	)
	flag.Parse()

	var (
		eng *engine.Engine
		err error
	)
	switch {
	case *paper:
		eng = engine.New(docgen.FigureOne())
	case *file != "":
		eng, err = engine.Load(*file)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -file or -paper (see -h)")
	}

	if *docstats {
		return eng.Document().ComputeStats().Write(os.Stdout)
	}
	if *outline {
		return eng.Document().Outline(os.Stdout)
	}
	if *repl {
		return runREPL(eng, os.Stdin, os.Stdout)
	}
	if *keywords == "" {
		return fmt.Errorf("need -query keywords")
	}

	opts := query.Options{Workers: *workers, Trace: *trace}
	switch *strategy {
	case "auto":
		opts.Auto = true
	case "brute-force":
		opts.Strategy = cost.BruteForce
	case "naive":
		opts.Strategy = cost.Naive
	case "set-reduction":
		opts.Strategy = cost.SetReduction
	case "push-down":
		opts.Strategy = cost.PushDown
	default:
		return fmt.Errorf("unknown strategy %q", *strategy)
	}

	q, err := query.Parse(*keywords, *filterStr)
	if err != nil {
		return err
	}
	if *explain {
		fmt.Println("logical plan:")
		fmt.Print(q.LogicalPlan().Render())
		s := opts.Strategy
		if opts.Auto {
			s = cost.PushDown
		}
		fmt.Printf("physical plan (%v):\n", s)
		fmt.Print(q.PhysicalPlan(s).Render())
		fmt.Println()
	}

	// -trace runs the query under a real trace (the same machinery the
	// server's flight recorder uses) so the output shows the trace ID,
	// the structured span tree, and the per-stage latency split.
	var tr *obs.Trace
	runCtx := context.Background()
	if *trace {
		tr = obs.NewRecorder(1, 0).StartTrace("cli", q.String(), obs.TraceID{})
		runCtx = obs.ContextWithTrace(runCtx, tr)
	}
	ans, err := eng.RunContext(runCtx, q, opts)
	if err != nil {
		return err
	}
	tr.Finish(ans.Len())
	if *groupsOff {
		fmt.Printf("%v → %d fragment(s)\n", q, ans.Len())
		for _, f := range ans.Fragments() {
			fmt.Println(f)
			ans.WriteFragment(os.Stdout, f)
		}
	} else {
		fmt.Print(ans.Render())
	}

	if *dotOut != "" {
		highlight := map[xmltree.NodeID]bool{}
		for _, f := range ans.Fragments() {
			for _, id := range f.IDs() {
				highlight[id] = true
			}
		}
		df, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		if err := eng.Document().WriteDOT(df, highlight); err != nil {
			df.Close()
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d highlighted nodes)\n", *dotOut, len(highlight))
	}

	if *trace {
		fmt.Printf("\ntrace %s:\n", tr.ID())
		fmt.Print(tr.Root().Render())
		if total := ans.Result.Stats.Stages.Total(); total > 0 {
			fmt.Println("stages:")
			for st := obs.Stage(0); st < obs.NumStages; st++ {
				ns := ans.Result.Stats.Stages[st]
				if ns == 0 {
					continue
				}
				fmt.Printf("  %-10s %10v  %5.1f%%\n", st, time.Duration(ns), 100*float64(ns)/float64(total))
			}
		}
	}
	if *stats {
		st := ans.Result.Stats
		fmt.Printf("\nstats: strategy=%v seeds=%v fixpoints=%v candidates=%d answers=%d joins=%d elapsed=%v\n",
			st.Strategy, st.SeedSizes, st.FixedPointSizes, st.Candidates, st.Answers, st.Joins, st.Elapsed)
		fmt.Printf("ops: pairwise=%d powerset=%d iterations=%d prunes=%d\n",
			st.Ops.PairwiseJoins, st.Ops.PowersetExpansions, st.Ops.FixedPointIterations, st.Ops.FilterPrunes)
		fmt.Printf("kernel: memo-hits=%d dedup-probes=%d\n",
			st.Ops.JoinMemoHits, st.Ops.DedupProbes)
	}
	if *slca {
		fmt.Printf("\nSLCA baseline: %v\n", eng.SLCA(*keywords))
		fmt.Printf("ELCA baseline: %v\n", eng.ELCA(*keywords))
		for _, v := range eng.SLCA(*keywords) {
			end := eng.Document().SubtreeEnd(v)
			fmt.Printf("  smallest subtree at %v: nodes [%v..%v]\n", v, v, end)
		}
	}
	return nil
}

// runREPL reads one query per line: "keywords" or "keywords :: filter".
// Lines beginning with '#' are comments; ":quit" exits. Errors are
// reported per line, never fatal.
func runREPL(eng *engine.Engine, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, "xfrag repl — 'keywords :: filter' per line, :quit to exit")
	scanner := bufio.NewScanner(in)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case line == ":quit" || line == ":q":
			return nil
		}
		keywords, filterSpec, _ := strings.Cut(line, "::")
		ans, err := eng.Query(strings.TrimSpace(keywords), strings.TrimSpace(filterSpec), query.Options{Auto: true})
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			continue
		}
		fmt.Fprint(out, ans.Render())
	}
	return scanner.Err()
}
