// Command benchjson converts `go test -bench` output into a stable
// JSON form and compares two result sets with a regression gate. It
// stands in for benchstat in environments without network access to
// install it; the comparison is simpler (single-run means, no
// significance testing), so the hard gate applies only to allocs/op —
// deterministic under Go's allocation accounting — while ns/op deltas
// are reported for humans and gated only at a coarse threshold meant
// to catch order-of-magnitude regressions, not noise.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson parse > out.json
//	benchjson compare OLD NEW [-gate-allocs PCT] [-gate-ns PCT]
//
// compare accepts either raw `go test -bench` text or JSON produced
// by parse for both inputs, so the committed baseline can stay in the
// human-readable text form.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metric units follow testing's output:
// NsPerOp from "ns/op", AllocsPerOp from "allocs/op", BytesPerOp from
// "B/op", and Extra holds custom ReportMetric units such as
// "joins/op".
type Result struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// File is the parsed form of one benchmark run.
type File struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		if err := runParse(os.Args[2:]); err != nil {
			fatal(err)
		}
	case "compare":
		if err := runCompare(os.Args[2:]); err != nil {
			fatal(err)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchjson parse [file] | benchjson compare OLD NEW [-gate-allocs PCT] [-gate-ns PCT]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func runParse(args []string) error {
	in := io.Reader(os.Stdin)
	if len(args) == 1 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	} else if len(args) > 1 {
		usage()
	}
	file, err := parseText(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// parseText reads `go test -bench` output. Lines it does not
// recognize (test chatter, PASS/ok) are skipped.
func parseText(r io.Reader) (*File, error) {
	file := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			file.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			file.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			file.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			file.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				file.Results = append(file.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(file.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return file, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8  100  123.4 ns/op  5 B/op  2 allocs/op  7.0 joins/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so results compare across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerOp = val
		default:
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[unit] = val
		}
	}
	return res, res.NsPerOp > 0
}

// load reads a results file in either form: JSON from `benchjson
// parse`, or raw `go test -bench` text.
func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "{") {
		file := &File{}
		if err := json.Unmarshal(data, file); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return file, nil
	}
	file, err := parseText(strings.NewReader(trimmed))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return file, nil
}

func runCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	gateAllocs := fs.Float64("gate-allocs", 0, "fail if allocs/op regresses by more than PCT percent (0 disables)")
	gateNs := fs.Float64("gate-ns", 0, "fail if ns/op regresses by more than PCT percent (0 disables)")
	var positional []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			break
		}
		positional = append(positional, a)
	}
	if err := fs.Parse(args[len(positional):]); err != nil {
		return err
	}
	positional = append(positional, fs.Args()...)
	if len(positional) != 2 {
		usage()
	}
	oldFile, err := load(positional[0])
	if err != nil {
		return err
	}
	newFile, err := load(positional[1])
	if err != nil {
		return err
	}
	oldByName := map[string]Result{}
	for _, r := range oldFile.Results {
		oldByName[r.Name] = r
	}
	names := make([]string, 0, len(newFile.Results))
	newByName := map[string]Result{}
	for _, r := range newFile.Results {
		newByName[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)

	w := os.Stdout
	fmt.Fprintf(w, "%-52s %14s %14s %8s   %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")
	var failures []string
	for _, name := range names {
		nr := newByName[name]
		or, ok := oldByName[name]
		if !ok {
			fmt.Fprintf(w, "%-52s %14s %14.0f %8s   %12s %12.0f %8s\n",
				name, "-", nr.NsPerOp, "new", "-", nr.AllocsPerOp, "new")
			continue
		}
		dNs := pctDelta(or.NsPerOp, nr.NsPerOp)
		dAllocs := pctDelta(or.AllocsPerOp, nr.AllocsPerOp)
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %7.1f%%   %12.0f %12.0f %7.1f%%\n",
			name, or.NsPerOp, nr.NsPerOp, dNs, or.AllocsPerOp, nr.AllocsPerOp, dAllocs)
		if *gateAllocs > 0 && dAllocs > *gateAllocs {
			failures = append(failures,
				fmt.Sprintf("%s: allocs/op regressed %.1f%% (gate %.1f%%)", name, dAllocs, *gateAllocs))
		}
		if *gateNs > 0 && dNs > *gateNs {
			failures = append(failures,
				fmt.Sprintf("%s: ns/op regressed %.1f%% (gate %.1f%%)", name, dNs, *gateNs))
		}
	}
	for name := range oldByName {
		if _, ok := newByName[name]; !ok {
			fmt.Fprintf(w, "%-52s missing from new results\n", name)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintln(os.Stderr, "\nperf gate FAILED:")
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	return nil
}

// pctDelta returns the percentage change from old to new; 0 when old
// is 0 and new is 0, +100 per unit when growing from 0.
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return new * 100
	}
	return (new - old) / old * 100
}
