// Command xfragserver serves a collection of XML documents as a JSON
// keyword-search API (see internal/httpapi for the endpoints).
//
// Usage:
//
//	xfragserver -addr :8080 doc1.xml doc2.xml
//	xfragserver -paper -addr :8080          # serve the Figure 1 document
//	xfragserver -data-dir /var/lib/xfrag -shards 8 -ingest-workers 4
//
// Endpoints (the retired un-versioned /api/* aliases are gone by
// default; -legacy-api re-mounts them with a Deprecation header —
// build against /api/v1):
//
//	GET  /healthz                 liveness (process is up)
//	GET  /readyz                  readiness (503 during WAL replay / queue saturation)
//	GET  /api/v1                  machine-readable route manifest (method, path, params, deprecation)
//	GET  /api/v1/docs
//	POST /api/v1/docs             {"name": "...", "xml": "<...>"}
//	POST /api/v1/docs?async=1     202 + job ID; 429 when the ingest queue is full
//	GET  /api/v1/jobs/{id}        async ingest job status
//	GET  /api/v1/search?q=xquery+optimization&filter=size<=3&limit=10&offset=0&timeout=250ms
//	GET  /api/v1/explain?q=...&filter=...&strategy=push-down&trace=1
//	GET  /api/v1/metrics          (JSON; ?format=prom for Prometheus text)
//	POST /api/v1/watch            register a standing query → {"id","seq"} + snapshot
//	GET  /api/v1/watch            list standing queries
//	GET  /api/v1/watch/{id}       resumable SSE delta stream (Accept: text/event-stream) or long-poll (?since=seq&wait=20s; ?snapshot=1)
//	DEL  /api/v1/watch/{id}       cancel a standing query
//	GET  /api/v1/debug/slow       slow-query flight recorder (traced requests over -slow-query)
//	GET  /api/v1/debug/inflight   traces currently executing, with live durations
//	GET  /api/v1/debug/trace/{id} every recorded trace for one 32-hex-digit trace ID
//
// Standing queries (-max-subscriptions, -watch-buffer): POST
// /api/v1/watch compiles the query once and materializes its answer
// set; every subsequent ingest/replace/delete re-runs the algebra on
// only the affected document and streams precise add/update/remove
// deltas with per-subscription sequence numbers. Works on replicas
// too, fed by the replication stream.
//
// Tracing: -trace-sample records a fraction of requests as structured
// span trees in a bounded in-memory flight recorder; any single
// request can force a trace with ?trace=1 or a sampled W3C
// Traceparent header (the response echoes the ID in X-Xfrag-Trace-Id).
//
// Query endpoints evaluate under a per-request deadline
// (-query-timeout, shortenable per request with ?timeout=) and behind
// an admission controller (-max-concurrent / -admission-queue /
// -admission-wait) that sheds overload with 503 + Retry-After instead
// of queueing unboundedly.
//
// With -data-dir the server runs on the durable sharded store
// (internal/store): documents added at runtime are write-ahead-logged
// and survive restarts, ingest is asynchronous behind a bounded
// queue, and search scatter-gathers across shards under the request
// deadline. Without it the server is a plain in-memory collection, as
// before. SIGINT/SIGTERM shuts down gracefully: in-flight requests
// finish, the ingest queue drains, and the WAL is fsynced.
//
// With -pprof, the Go profiling endpoints mount under /debug/pprof/
// and expvar under /debug/vars.
//
// Replication (-role): a primary (-role=primary, requires -data-dir)
// additionally serves its per-shard WAL as a frame stream under
// /repl/v1/ for followers. A replica (-role=replica -primary-url=URL)
// keeps an in-memory mirror by pulling that stream: it serves the
// same read endpoints (plus X-Xfrag-Replica-Lag headers), answers
// writes with 403 pointing at the primary, reports 503 on /readyz
// when its lag exceeds -max-staleness, and exposes its per-shard lag
// at GET /api/v1/replication.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collection"
	"repro/internal/docgen"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/xmltree"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	paper := flag.Bool("paper", false, "preload the paper's Figure 1 document")
	snap := flag.String("snapshot", "", "preload documents from a snapshot file (see internal/snapshot)")
	dataDir := flag.String("data-dir", "", "durable store directory (WAL + compaction snapshots); empty serves from memory only")
	shards := flag.Int("shards", 8, "document shards in the durable store (with -data-dir)")
	ingestWorkers := flag.Int("ingest-workers", 4, "background indexing workers for async ingest (with -data-dir)")
	queueSize := flag.Int("ingest-queue", 256, "async ingest queue bound; a full queue returns 429 (with -data-dir)")
	bgReplay := flag.Bool("background-replay", false, "recover the WAL in the background and serve /readyz=503 until done (with -data-dir)")
	indexDir := flag.String("index-dir", "", "persistent global term index directory: restart reuses persisted postings instead of re-tokenizing, and searches prune documents by posting arithmetic (requires -data-dir)")
	indexFlushBytes := flag.Int64("index-flush-bytes", 0, "per-shard term-index memtable budget before a segment flush; 0 uses the built-in default (with -index-dir)")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "default per-request evaluation deadline for search/explain; 0 disables")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on the client ?timeout= parameter; 0 caps at -query-timeout")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrently evaluating queries before requests queue; 0 means 4×GOMAXPROCS, negative disables admission control")
	admissionQueue := flag.Int("admission-queue", 0, "requests allowed to wait for an evaluation slot; beyond it the server sheds 503 (0 means =max-concurrent)")
	admissionWait := flag.Duration("admission-wait", 100*time.Millisecond, "how long a queued request waits for a slot before shedding 503")
	role := flag.String("role", "standalone", "replication role: standalone, primary (serves /repl/v1/* WAL streams; needs -data-dir) or replica (pulls from -primary-url, read-only)")
	primaryURL := flag.String("primary-url", "", "primary's base URL, e.g. http://10.0.0.1:8080 (with -role=replica)")
	maxStaleness := flag.Duration("max-staleness", 30*time.Second, "replica staleness bound: /readyz reports 503 when replication lag exceeds it (with -role=replica)")
	replRetry := flag.Duration("repl-retry", 250*time.Millisecond, "back-off between replication stream reconnects (with -role=replica)")
	resultCache := flag.Int("result-cache", 0, "per-document LRU result cache entries; 0 disables (with -data-dir or -role=replica)")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/ and /debug/vars (profiling; keep off on untrusted networks)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests (0..1] traced into the flight recorder; 0 samples none (requests can still force a trace with ?trace=1 or a sampled Traceparent header)")
	slowQuery := flag.Duration("slow-query", 250*time.Millisecond, "traced requests at or over this duration land in the slow-query ring at /api/v1/debug/slow")
	traceBuffer := flag.Int("trace-buffer", 128, "flight recorder ring capacity (recent and slow rings each hold this many traces)")
	maxSubscriptions := flag.Int("max-subscriptions", 0, "cap on registered standing queries (/api/v1/watch); 0 means 64, negative disables the watch API")
	watchBuffer := flag.Int("watch-buffer", 0, "per-subscription event-ring capacity for resumable watch streams; 0 means 256")
	legacyAPI := flag.Bool("legacy-api", false, "re-mount the retired un-versioned /api/* aliases (deprecated; they answer with a Deprecation header)")
	quiet := flag.Bool("quiet", false, "disable the structured request log on stderr")
	flag.Parse()
	if *traceSample < 0 || *traceSample > 1 {
		log.Fatalf("-trace-sample %v out of range (want 0..1)", *traceSample)
	}

	// Gather the preload set (CLI files, -paper, -snapshot) first; it
	// is fed to whichever backend is selected.
	var preload []*xmltree.Document
	if *paper {
		preload = append(preload, docgen.FigureOne())
	}
	if *snap != "" {
		docs, err := snapshot.LoadFile(*snap)
		if err != nil {
			log.Fatalf("snapshot %s: %v", *snap, err)
		}
		preload = append(preload, docs...)
	}
	for _, path := range flag.Args() {
		doc, err := xmltree.ParseFile(path)
		if err != nil {
			log.Fatalf("load %s: %v", path, err)
		}
		preload = append(preload, doc)
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	// One flight recorder for the whole process: the HTTP layer, the
	// store's async ingest workers, and (on replicas) the replication
	// follower all record into it, so /api/v1/debug/* sees everything.
	recorder := obs.NewRecorder(*traceBuffer, *slowQuery)

	cfg := httpapi.Config{
		Logger:             logger,
		QueryTimeout:       *queryTimeout,
		MaxTimeout:         *maxTimeout,
		MaxConcurrent:      *maxConcurrent,
		MaxQueue:           *admissionQueue,
		QueueWait:          *admissionWait,
		TraceSample:        *traceSample,
		SlowQueryThreshold: *slowQuery,
		TraceBuffer:        *traceBuffer,
		Recorder:           recorder,
		MaxSubscriptions:   *maxSubscriptions,
		WatchBuffer:        *watchBuffer,
		LegacyAPI:          *legacyAPI,
	}

	// The signal context is created before the backend so the
	// replication follower (which needs a cancellation context from
	// birth) and the HTTP server share one shutdown trigger.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *role {
	case "standalone", "primary", "replica":
	default:
		log.Fatalf("unknown -role %q (want standalone, primary or replica)", *role)
	}
	if *role == "primary" && *dataDir == "" {
		log.Fatal("-role=primary requires -data-dir (replication ships the WAL)")
	}
	if *role == "replica" {
		if *primaryURL == "" {
			log.Fatal("-role=replica requires -primary-url")
		}
		if *dataDir != "" {
			log.Fatal("-role=replica is incompatible with -data-dir: a replica mirrors the primary's log in memory and resyncs on restart")
		}
	}
	if *indexDir != "" && *dataDir == "" {
		log.Fatal("-index-dir requires -data-dir (the term index is a cache of the WAL)")
	}

	var (
		handler  http.Handler
		st       *store.Store
		follower *repl.Follower
	)
	switch {
	case *dataDir != "":
		var err error
		st, err = store.Open(store.Options{
			Dir:              *dataDir,
			Shards:           *shards,
			IngestWorkers:    *ingestWorkers,
			QueueSize:        *queueSize,
			BackgroundReplay: *bgReplay,
			CacheEntries:     *resultCache,
			IndexDir:         *indexDir,
			IndexFlushBytes:  *indexFlushBytes,
		})
		if err != nil {
			log.Fatalf("store %s: %v", *dataDir, err)
		}
		if *indexDir != "" {
			fmt.Printf("xfragserver: persistent term index in %s (%d document(s) covered)\n", *indexDir, st.TermIndex().Docs())
		}
		if *bgReplay {
			fmt.Printf("xfragserver: recovering WAL in background — /readyz reports readiness — listening on %s\n", *addr)
		} else {
			for _, d := range preload {
				// Documents recovered from the WAL win over re-supplied
				// preload files of the same name.
				if st.Engine(d.Name()) != nil {
					continue
				}
				if err := st.Add(d); err != nil {
					log.Fatalf("add %s: %v", d.Name(), err)
				}
			}
			stats := st.Stats()
			fmt.Printf("xfragserver: %d document(s), %d nodes, %d postings — %d shard(s), data in %s — listening on %s\n",
				stats.Documents, stats.Nodes, stats.Postings, st.Shards(), *dataDir, *addr)
		}
		if *role == "primary" {
			cfg.Replication = &httpapi.ReplicationConfig{Role: httpapi.RolePrimary}
			fmt.Printf("xfragserver: primary — followers stream from /repl/v1/ — listening on %s\n", *addr)
		}
		handler = httpapi.NewStoreWithConfig(st, cfg)
	case *role == "replica":
		var err error
		// MemoryIndex: the replica builds its term index from the
		// replicated WAL stream, so posting-first pruning serves the
		// same answers as the primary.
		st, err = store.Open(store.Options{
			Shards:       *shards,
			CacheEntries: *resultCache,
			MemoryIndex:  true,
		})
		if err != nil {
			log.Fatalf("replica store: %v", err)
		}
		follower = &repl.Follower{
			PrimaryURL:    *primaryURL,
			Store:         st,
			Metrics:       st.Metrics(),
			RetryInterval: *replRetry,
			Logger:        logger,
			Recorder:      recorder,
		}
		if err := follower.Start(ctx); err != nil {
			log.Fatalf("replication: %v", err)
		}
		cfg.Replication = &httpapi.ReplicationConfig{
			Role:         httpapi.RoleReplica,
			PrimaryURL:   *primaryURL,
			Follower:     follower,
			MaxStaleness: *maxStaleness,
		}
		fmt.Printf("xfragserver: replica of %s (max staleness %s) — listening on %s\n", *primaryURL, *maxStaleness, *addr)
		handler = httpapi.NewStoreWithConfig(st, cfg)
	default:
		coll := collection.New()
		if *resultCache > 0 {
			coll.SetResultCache(*resultCache)
		}
		for _, d := range preload {
			if err := coll.Add(d); err != nil {
				log.Fatalf("add %s: %v", d.Name(), err)
			}
		}
		stats := coll.Stats()
		fmt.Printf("xfragserver: %d document(s), %d nodes, %d postings — listening on %s\n",
			stats.Documents, stats.Nodes, stats.Postings, *addr)
		handler = httpapi.NewWithConfig(coll, cfg)
	}

	if *pprofOn {
		// Mount the API beside the debug endpoints on a wrapper mux so
		// the profiling handlers stay outside the request middleware.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		handler = mux
		fmt.Println("xfragserver: profiling enabled at /debug/pprof/ and /debug/vars")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		// Derive request contexts from the signal context: Shutdown
		// alone only waits for in-flight requests, and the replication
		// streams are in-flight for minutes at a time — without this a
		// SIGTERM'd primary keeps heartbeating its replicas (holding
		// their lag near zero) for the whole drain window.
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	// Graceful shutdown on SIGINT/SIGTERM: in-flight searches finish,
	// the listener closes, then the store drains its ingest queue and
	// fsyncs the WAL so every acknowledged mutation is durable.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		fmt.Println("xfragserver: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Fatal(err)
		}
		if follower != nil {
			follower.Wait()
			fmt.Println("xfragserver: replication streams stopped")
		}
		if st != nil {
			if err := st.Close(shutCtx); err != nil {
				log.Fatalf("store close: %v", err)
			}
			fmt.Println("xfragserver: ingest queue drained, WAL synced")
		}
	}
}
