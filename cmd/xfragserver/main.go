// Command xfragserver serves a collection of XML documents as a JSON
// keyword-search API (see internal/httpapi for the endpoints).
//
// Usage:
//
//	xfragserver -addr :8080 doc1.xml doc2.xml
//	xfragserver -paper -addr :8080          # serve the Figure 1 document
//
// Endpoints:
//
//	GET  /healthz
//	GET  /api/docs
//	POST /api/docs                {"name": "...", "xml": "<...>"}
//	GET  /api/search?q=xquery+optimization&filter=size<=3&strategy=auto&limit=10
//	GET  /api/explain?q=...&filter=...&strategy=push-down
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collection"
	"repro/internal/docgen"
	"repro/internal/httpapi"
	"repro/internal/snapshot"
	"repro/internal/xmltree"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	paper := flag.Bool("paper", false, "preload the paper's Figure 1 document")
	snap := flag.String("snapshot", "", "preload documents from a snapshot file (see internal/snapshot)")
	flag.Parse()

	coll := collection.New()
	if *paper {
		if err := coll.Add(docgen.FigureOne()); err != nil {
			log.Fatal(err)
		}
	}
	if *snap != "" {
		docs, err := snapshot.LoadFile(*snap)
		if err != nil {
			log.Fatalf("snapshot %s: %v", *snap, err)
		}
		for _, d := range docs {
			if err := coll.Add(d); err != nil {
				log.Fatalf("snapshot %s: %v", *snap, err)
			}
		}
	}
	for _, path := range flag.Args() {
		doc, err := xmltree.ParseFile(path)
		if err != nil {
			log.Fatalf("load %s: %v", path, err)
		}
		if err := coll.Add(doc); err != nil {
			log.Fatalf("add %s: %v", path, err)
		}
	}
	st := coll.Stats()
	fmt.Printf("xfragserver: %d document(s), %d nodes, %d postings — listening on %s\n",
		st.Documents, st.Nodes, st.Postings, *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(coll),
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Graceful shutdown on SIGINT/SIGTERM: in-flight searches finish,
	// then the listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		fmt.Println("xfragserver: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Fatal(err)
		}
	}
}
