// Command xfragserver serves a collection of XML documents as a JSON
// keyword-search API (see internal/httpapi for the endpoints).
//
// Usage:
//
//	xfragserver -addr :8080 doc1.xml doc2.xml
//	xfragserver -paper -addr :8080          # serve the Figure 1 document
//
// Endpoints:
//
//	GET  /healthz
//	GET  /api/docs
//	POST /api/docs                {"name": "...", "xml": "<...>"}
//	GET  /api/search?q=xquery+optimization&filter=size<=3&strategy=auto&limit=10
//	GET  /api/explain?q=...&filter=...&strategy=push-down&trace=1
//	GET  /api/metrics                     (JSON; ?format=prom for Prometheus text)
//
// With -pprof, the Go profiling endpoints mount under /debug/pprof/
// and expvar under /debug/vars.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collection"
	"repro/internal/docgen"
	"repro/internal/httpapi"
	"repro/internal/snapshot"
	"repro/internal/xmltree"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	paper := flag.Bool("paper", false, "preload the paper's Figure 1 document")
	snap := flag.String("snapshot", "", "preload documents from a snapshot file (see internal/snapshot)")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/ and /debug/vars (profiling; keep off on untrusted networks)")
	quiet := flag.Bool("quiet", false, "disable the structured request log on stderr")
	flag.Parse()

	coll := collection.New()
	if *paper {
		if err := coll.Add(docgen.FigureOne()); err != nil {
			log.Fatal(err)
		}
	}
	if *snap != "" {
		docs, err := snapshot.LoadFile(*snap)
		if err != nil {
			log.Fatalf("snapshot %s: %v", *snap, err)
		}
		for _, d := range docs {
			if err := coll.Add(d); err != nil {
				log.Fatalf("snapshot %s: %v", *snap, err)
			}
		}
	}
	for _, path := range flag.Args() {
		doc, err := xmltree.ParseFile(path)
		if err != nil {
			log.Fatalf("load %s: %v", path, err)
		}
		if err := coll.Add(doc); err != nil {
			log.Fatalf("add %s: %v", path, err)
		}
	}
	st := coll.Stats()
	fmt.Printf("xfragserver: %d document(s), %d nodes, %d postings — listening on %s\n",
		st.Documents, st.Nodes, st.Postings, *addr)

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	var handler http.Handler = httpapi.NewWithLogger(coll, logger)
	if *pprofOn {
		// Mount the API beside the debug endpoints on a wrapper mux so
		// the profiling handlers stay outside the request middleware.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		handler = mux
		fmt.Println("xfragserver: profiling enabled at /debug/pprof/ and /debug/vars")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	// Graceful shutdown on SIGINT/SIGTERM: in-flight searches finish,
	// then the listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		fmt.Println("xfragserver: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Fatal(err)
		}
	}
}
