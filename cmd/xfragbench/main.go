// Command xfragbench regenerates every table and figure of the paper
// plus the projected performance study (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	xfragbench -exp table1        # one experiment
//	xfragbench -exp all           # everything
//	xfragbench -list              # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

var experiments = []struct {
	id   string
	desc string
	run  func() string
}{
	{"table1", "Table 1: candidate fragment sets of the running query", bench.Table1},
	{"fig2", "Figure 2: keyword-split variations", bench.Figure2},
	{"fig3", "Figure 3: fragment/pairwise/powerset join examples", bench.Figure3},
	{"fig4", "Figure 4: fragment set reduction", bench.Figure4},
	{"fig5", "Figure 5: query evaluation trees (push-down)", bench.Figure5},
	{"fig6", "Figure 6: anti-monotonic filters", bench.Figure6},
	{"fig7", "Figure 7: filter without the anti-monotonic property", bench.Figure7},
	{"fig8", "Figure 8: running query end to end vs. SLCA", bench.Figure8},
	{"perf-strategies", "strategy sweep over size × frequency × β", func() string {
		return bench.FormatStrategyRows(bench.StrategySweep(bench.DefaultStrategySweep()))
	}},
	{"perf-rf", "reduction-factor cost trade-off (crossover v)", func() string {
		return bench.FormatRFRows(bench.RFSweep(7)) + "\n" +
			bench.FormatAdaptiveRows(bench.AdaptiveSweep())
	}},
	{"perf-scale", "push-down latency vs. document size", func() string {
		return bench.FormatScaleRows(bench.ScaleSweep(7))
	}},
	{"perf-slca", "SLCA baseline vs. fragment algebra", func() string {
		return bench.FormatSLCARows(bench.SLCAComparison(7))
	}},
	{"perf-rel", "native vs. relational-substrate executor", func() string {
		return bench.FormatRelRows(bench.RelComparison(7))
	}},
	{"perf-effect", "retrieval effectiveness vs. planted gold fragments", func() string {
		return bench.FormatEffectivenessRows(bench.Effectiveness(7))
	}},
	{"perf-replicas", "read QPS scaling across 1 primary + 2 replicas", func() string {
		return bench.FormatReplicaRows(bench.ReplicaScaling(7))
	}},
}

func main() {
	exp := flag.String("exp", "all", "experiment ID to run (see -list)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-16s  %s\n", e.id, e.desc)
		}
		return
	}
	ran := false
	for _, e := range experiments {
		if *exp != "all" && e.id != *exp {
			continue
		}
		ran = true
		fmt.Printf("==== %s ====\n", e.id)
		fmt.Println(e.run())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "xfragbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
}
