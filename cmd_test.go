package xfrag_test

// Smoke tests for the command-line tools: each binary is built once
// into a temp dir and driven the way a user would drive it. These
// guard flag wiring and output plumbing that the package tests cannot
// see.

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles every cmd/ binary once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "xfrag-tools")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"xfrag", "xfraggen", "xfragbench", "xfragserver"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, tool), "./cmd/"+tool)
			cmd.Env = os.Environ()
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				buildDir = string(out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v\n%s", buildErr, buildDir)
	}
	return buildDir
}

func runTool(t *testing.T, dir, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIPaperQuery(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "xfrag",
		"-paper", "-query", "XQuery optimization", "-filter", "size<=3", "-stats", "-slca")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{
		"4 fragment(s)", "⟨n16,n17,n18⟩", "SLCA baseline: [n17]", "strategy=push-down",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIExplainAndStrategies(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "xfrag",
		"-paper", "-query", "XQuery optimization", "-filter", "size<=3",
		"-strategy", "set-reduction", "-explain", "-flat")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "logical plan:") || !strings.Contains(out, "⊖") {
		t.Fatalf("explain output wrong:\n%s", out)
	}
	if _, err := runTool(t, dir, "xfrag", "-paper", "-query", "x", "-strategy", "warp"); err == nil {
		t.Fatal("unknown strategy must fail")
	}
	if _, err := runTool(t, dir, "xfrag", "-query", "x"); err == nil {
		t.Fatal("missing -file/-paper must fail")
	}
}

func TestCLIOutlineAndDocstats(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "xfrag", "-paper", "-outline")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "n0 <article>") {
		t.Fatalf("outline:\n%s", out)
	}
	out, err = runTool(t, dir, "xfrag", "-paper", "-docstats")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "nodes 82") || !strings.Contains(out, "<par>") {
		t.Fatalf("docstats:\n%s", out)
	}
}

func TestCLIGenPipeline(t *testing.T) {
	dir := buildTools(t)
	tmp := t.TempDir()
	corpus := filepath.Join(tmp, "corpus.xml")
	out, err := runTool(t, dir, "xfraggen",
		"-sections", "3", "-depth", "2", "-seed", "5", "-plant", "needlea:4,needleb:4", "-stats")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// Keep only stdout XML (stats went to stderr but CombinedOutput
	// merges; cut from first '<').
	xml := out[strings.Index(out, "<"):]
	if err := os.WriteFile(corpus, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runTool(t, dir, "xfrag",
		"-file", corpus, "-query", "needlea needleb", "-filter", "size<=6")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "fragment(s)") {
		t.Fatalf("query output:\n%s", out)
	}
}

func TestCLIBenchList(t *testing.T) {
	dir := buildTools(t)
	out, err := runTool(t, dir, "xfragbench", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, id := range []string{"table1", "fig8", "perf-strategies", "perf-effect"} {
		if !strings.Contains(out, id) {
			t.Fatalf("bench list missing %s:\n%s", id, out)
		}
	}
	out, err = runTool(t, dir, "xfragbench", "-exp", "table1")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "final answer set (4 fragments)") {
		t.Fatalf("table1 output:\n%s", out)
	}
	if _, err := runTool(t, dir, "xfragbench", "-exp", "nonsense"); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestCLIServer(t *testing.T) {
	dir := buildTools(t)
	cmd := exec.Command(filepath.Join(dir, "xfragserver"), "-paper", "-addr", "127.0.0.1:18472")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	// Wait for readiness.
	var resp *http.Response
	var err error
	for i := 0; i < 50; i++ {
		resp, err = http.Get("http://127.0.0.1:18472/healthz")
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never became ready: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get("http://127.0.0.1:18472/api/v1/search?q=xquery+optimization&filter=size%3C%3D3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Total int `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Total != 4 {
		t.Fatalf("total = %d, want 4", body.Total)
	}
}

func TestCLIDotOutput(t *testing.T) {
	dir := buildTools(t)
	dot := filepath.Join(t.TempDir(), "answers.dot")
	out, err := runTool(t, dir, "xfrag",
		"-paper", "-query", "XQuery optimization", "-filter", "size<=3", "-dot", dot)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "digraph doc {") {
		t.Fatalf("not a dot file:\n%.100s", s)
	}
	// 5 distinct answer nodes (n16, n17, n18) highlighted.
	if strings.Count(s, "fillcolor") != 3 {
		t.Fatalf("highlight count = %d, want 3", strings.Count(s, "fillcolor"))
	}
}

func TestCLIRepl(t *testing.T) {
	dir := buildTools(t)
	cmd := exec.Command(filepath.Join(dir, "xfrag"), "-paper", "-repl")
	cmd.Stdin = strings.NewReader(
		"# comment line\n" +
			"XQuery optimization :: size<=3\n" +
			"nosuchterm anywhere\n" +
			":quit\n")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "4 fragment(s)") {
		t.Fatalf("repl answer missing:\n%s", s)
	}
	if !strings.Contains(s, "0 fragment(s)") {
		t.Fatalf("repl empty answer missing:\n%s", s)
	}
}
