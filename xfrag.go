// Package xfrag is a Go implementation of the algebraic query model
// for keyword retrieval of XML fragments of Pradhan, "An Algebraic
// Query Model for Effective and Efficient Retrieval of XML Fragments"
// (VLDB 2006).
//
// An XML document is modelled as a rooted ordered tree and a query
// answer is a set of document fragments — connected induced subtrees —
// computed as σ_P(F1 ⋈* … ⋈* Fm): one keyword selection per term,
// combined by the powerset fragment join, restricted by a selection
// predicate P. Anti-monotonic predicates (size, height, width, depth
// bounds and their conjunctions/disjunctions) are pushed below the
// joins, which is the paper's central optimization (Theorem 3).
//
// Quick start:
//
//	eng, err := xfrag.Load("article.xml")
//	if err != nil { ... }
//	ans, err := eng.Query("xquery optimization", "size<=3", xfrag.Options{Auto: true})
//	if err != nil { ... }
//	for _, f := range ans.Fragments() {
//		fmt.Println(f)
//	}
//
// The package is a thin facade over the implementation packages:
// internal/core (the fragment algebra), internal/xmltree (the document
// model), internal/filter, internal/index, internal/query (planning
// and the evaluation strategies), internal/lca (the smallest-subtree
// baseline), internal/cost, internal/engine, internal/docgen and
// internal/relstore.
package xfrag

import (
	"context"
	"net/http"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/docgen"
	"repro/internal/engine"
	"repro/internal/filter"
	"repro/internal/httpapi"
	"repro/internal/query"
	"repro/internal/ranking"
	"repro/internal/snapshot"
	"repro/internal/xmltree"
)

// Core model types.
type (
	// Document is an XML document as a rooted ordered tree
	// (Definition 1).
	Document = xmltree.Document
	// NodeID identifies a node by pre-order rank.
	NodeID = xmltree.NodeID
	// Node is a read-only view of one document component.
	Node = xmltree.Node
	// Fragment is a connected induced subtree of a document
	// (Definition 2).
	Fragment = core.Fragment
	// FragmentSet is a deduplicated set of fragments.
	FragmentSet = core.Set
	// Filter is a named selection predicate with a declared
	// anti-monotonicity property (Definitions 3 and 11).
	Filter = filter.Filter
	// Query is Q_P{k1,…,km} (Definition 7).
	Query = query.Query
	// Options controls evaluation strategy selection.
	Options = query.Options
	// Stats reports the work an evaluation performed.
	Stats = query.Stats
	// Result is an answer set plus statistics.
	Result = query.Result
	// Engine answers queries over one indexed document.
	Engine = engine.Engine
	// Answer is a query result bound to its document for
	// presentation (incl. overlap grouping).
	Answer = engine.Answer
	// Strategy identifies an evaluation strategy (Section 4).
	Strategy = cost.Strategy
)

// Evaluation strategies (Section 4; Naive is the checking-based
// fixed-point iteration of Section 3.1.1).
const (
	BruteForce   = cost.BruteForce
	Naive        = cost.Naive
	SetReduction = cost.SetReduction
	PushDown     = cost.PushDown
)

// Load parses and indexes the XML file at path.
func Load(path string) (*Engine, error) { return engine.Load(path) }

// LoadString parses and indexes an XML document held in a string.
func LoadString(name, xml string) (*Engine, error) { return engine.LoadString(name, xml) }

// NewEngine wraps an already-built document.
func NewEngine(doc *Document) *Engine { return engine.New(doc) }

// ParseDocument parses an XML document without building an engine.
func ParseDocument(name, xml string) (*Document, error) { return xmltree.ParseString(name, xml) }

// NewQuery builds a query from raw terms and filter clauses.
func NewQuery(terms []string, filters ...Filter) (Query, error) {
	return query.New(terms, filters...)
}

// ParseQuery builds a query from a keyword string and a filter
// specification such as "size<=3,height<=2".
func ParseQuery(keywords, filterSpec string) (Query, error) {
	return query.Parse(keywords, filterSpec)
}

// Filters (Section 3.3; MaxSize/MaxHeight/MaxWidth/MaxDepth are
// anti-monotonic, EqualDepth and MinSize are the paper's examples of
// filters that are not).
var (
	MaxSize     = filter.MaxSize
	MaxHeight   = filter.MaxHeight
	MaxWidth    = filter.MaxWidth
	MaxDepth    = filter.MaxDepth
	MaxLeaves   = filter.MaxLeaves
	MinSize     = filter.MinSize
	EqualDepth  = filter.EqualDepth
	LeafWitness = filter.LeafWitness
	And         = filter.And
	Or          = filter.Or
	Not         = filter.Not
	ParseFilter = filter.Parse
)

// Algebra operations, exported for programmatic use on fragments.
var (
	// Join is the fragment join f1 ⋈ f2 (Definition 4).
	Join = core.Join
	// PairwiseJoin is F1 ⋈ F2 over sets (Definition 5).
	PairwiseJoin = core.PairwiseJoin
	// PowersetJoin is the literal F1 ⋈* F2 (Definition 6);
	// exponential, bounded.
	PowersetJoin = core.PowersetJoin
	// PowersetJoinFixedPoint is F1 ⋈* F2 via Theorem 2.
	PowersetJoinFixedPoint = core.PowersetJoinFixedPoint
	// FixedPoint is F⁺ via Theorem 1's iteration budget.
	FixedPoint = core.FixedPoint
	// Reduce is the fragment set reduction ⊖(F) (Definition 10).
	Reduce = core.Reduce
	// ReductionFactor is RF = (|F|−|⊖(F)|)/|F| (Section 5).
	ReductionFactor = core.ReductionFactor
	// NewFragment validates and builds a fragment from node IDs.
	NewFragment = core.NewFragment
	// NodeFragment builds the single-node fragment ⟨id⟩.
	NodeFragment = core.NodeFragment
	// NewFragmentSet builds a deduplicated fragment set.
	NewFragmentSet = core.NewSet
)

// Multi-document and presentation extensions (the paper's Sections
// 5–7 discuss ranking, overlap presentation and large collections as
// complements/future work; see DESIGN.md).
type (
	// Collection searches many documents at once, merging ranked hits.
	Collection = collection.Collection
	// Hit is one collection search result.
	Hit = collection.Hit
	// CollectionResult is a merged multi-document search result.
	CollectionResult = collection.Result
	// Ranker scores answer fragments (TF·IDF keyword evidence with
	// size decay).
	Ranker = ranking.Ranker
	// ScoredFragment pairs a fragment with its relevance score.
	ScoredFragment = ranking.Scored
	// RankWeights tunes the scoring function.
	RankWeights = ranking.Weights
)

// NewCollection returns an empty document collection.
func NewCollection() *Collection { return collection.New() }

// NewRanker builds a ranker over the engine's index for the given
// query terms.
func NewRanker(e *Engine, terms []string, w RankWeights) *Ranker {
	return ranking.New(e.Index(), terms, w)
}

// DefaultRankWeights returns the standard scoring weights.
func DefaultRankWeights() RankWeights { return ranking.DefaultWeights() }

// Canceled reports an evaluation stopped by context cancellation or
// deadline expiry; it carries the Stats of the work done before the
// stop and unwraps to context.Canceled / context.DeadlineExceeded, so
// errors.Is(err, context.DeadlineExceeded) works on facade errors.
type Canceled = query.Canceled

// IsCanceled unwraps err to its *Canceled, if any — the way to get at
// the partial Stats of a timed-out evaluation.
func IsCanceled(err error) (*Canceled, bool) { return query.IsCanceled(err) }

// QueryOption configures one evaluation made through the context-first
// facade entry points QueryContext and RunContext. The zero
// configuration picks the strategy automatically (Options.Auto), the
// paper's cost-based choice.
type QueryOption func(*queryConfig)

type queryConfig struct {
	opts    query.Options
	timeout time.Duration
}

func newQueryConfig(options []QueryOption) queryConfig {
	cfg := queryConfig{opts: query.Options{Auto: true}}
	for _, o := range options {
		o(&cfg)
	}
	return cfg
}

// WithStrategy forces one evaluation strategy instead of the default
// cost-based automatic choice.
func WithStrategy(s Strategy) QueryOption {
	return func(c *queryConfig) {
		c.opts.Strategy = s
		c.opts.Auto = false
	}
}

// WithWorkers parallelizes the push-down strategy's joins across n
// goroutines (n < 0 means GOMAXPROCS; 0 or 1 is sequential).
func WithWorkers(n int) QueryOption {
	return func(c *queryConfig) { c.opts.Workers = n }
}

// WithTrace records a per-operator span tree into the result.
func WithTrace() QueryOption {
	return func(c *queryConfig) { c.opts.Trace = true }
}

// WithMaxFragments caps how many fragments any intermediate set may
// hold before evaluation aborts (the powerset join is worst-case
// exponential).
func WithMaxFragments(n int) QueryOption {
	return func(c *queryConfig) { c.opts.MaxFragments = n }
}

// WithTimeout bounds the evaluation's wall-clock time even when the
// caller's context carries no deadline; when both exist the earlier
// deadline wins. An expired evaluation returns an error satisfying
// errors.Is(err, context.DeadlineExceeded); see IsCanceled for the
// partial statistics.
func WithTimeout(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.timeout = d }
}

// WithOptions replaces the entire options struct, for callers that
// already hold a query.Options.
func WithOptions(opts Options) QueryOption {
	return func(c *queryConfig) { c.opts = opts }
}

// QueryContext parses and evaluates a keyword/filter query on e under
// ctx: cancellation and deadlines reach the innermost join loops, so
// even a worst-case exponential evaluation stops promptly.
//
//	ans, err := xfrag.QueryContext(ctx, eng, "xquery optimization", "size<=3",
//		xfrag.WithTimeout(200*time.Millisecond))
func QueryContext(ctx context.Context, e *Engine, keywords, filterSpec string, options ...QueryOption) (*Answer, error) {
	cfg := newQueryConfig(options)
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	return e.QueryContext(ctx, keywords, filterSpec, cfg.opts)
}

// RunContext evaluates a prebuilt query on e under ctx; see
// QueryContext for the cancellation semantics.
func RunContext(ctx context.Context, e *Engine, q Query, options ...QueryOption) (*Answer, error) {
	cfg := newQueryConfig(options)
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	return e.RunContext(ctx, q, cfg.opts)
}

// SearchContext evaluates a keyword/filter query across a collection
// under ctx. Documents finished before a deadline expires keep their
// hits; unfinished ones land in CollectionResult.Errors, so a timed
// out search degrades to partial results.
func SearchContext(ctx context.Context, c *Collection, keywords, filterSpec string, options ...QueryOption) (*CollectionResult, error) {
	cfg := newQueryConfig(options)
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	return c.SearchContext(ctx, keywords, filterSpec, cfg.opts)
}

// HTTPConfig tunes the HTTP server's robustness knobs: per-request
// evaluation deadlines and the admission controller that sheds
// overload with 503 + Retry-After.
type HTTPConfig = httpapi.Config

// NewHTTPHandler returns an http.Handler serving the collection as a
// JSON search API (see internal/httpapi for endpoints). Build against
// the versioned /api/v1 routes; the un-versioned /api aliases are
// deprecated.
func NewHTTPHandler(c *Collection) http.Handler { return httpapi.New(c) }

// NewHTTPHandlerWithConfig is NewHTTPHandler with explicit deadline
// and admission-control settings.
func NewHTTPHandlerWithConfig(c *Collection, cfg HTTPConfig) http.Handler {
	return httpapi.NewWithConfig(c, cfg)
}

// FragmentXML serializes a fragment as a well-formed XML snippet of
// exactly its nodes, nested per the induced tree.
func FragmentXML(f Fragment) string { return engine.FragmentXML(f) }

// SaveSnapshot persists documents to a snapshot file (atomic write);
// LoadSnapshot reopens them with all derived structures rebuilt.
func SaveSnapshot(path string, docs ...*Document) error { return snapshot.SaveFile(path, docs...) }

// LoadSnapshot loads every document from the snapshot at path.
func LoadSnapshot(path string) ([]*Document, error) { return snapshot.LoadFile(path) }

// FigureOneDocument returns the 82-node example document of the
// paper's Figure 1, on which Table 1 and the running query
// {XQuery, optimization} are defined.
func FigureOneDocument() *Document { return docgen.FigureOne() }

// GenerateDocument builds a synthetic document-centric XML document;
// see internal/docgen.Config for the knobs.
func GenerateDocument(cfg GeneratorConfig) (*Document, error) { return docgen.Generate(cfg) }

// GeneratorConfig configures GenerateDocument.
type GeneratorConfig = docgen.Config
