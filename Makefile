GO ?= go

.PHONY: all build test check race cover bench fuzz experiments tools clean

all: build check

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# check is the full gate: vet plus the whole suite under the race
# detector (the observability layer counts from worker goroutines, so
# race coverage is part of correctness here), then the overload tests
# again explicitly — the admission controller's shed path must hold
# under the race detector — and the cancellation-overhead benchmark,
# which keeps the cost of threading a context through the join loops
# visible on every run.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -run Overload ./internal/httpapi/
	$(GO) test -run xxx -bench BenchmarkCancellationOverhead -benchtime 200ms ./internal/query/

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/xmltree/
	$(GO) test -fuzz=FuzzParseFilter -fuzztime=30s ./internal/filter/

experiments:
	$(GO) run ./cmd/xfragbench -exp all

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin cover.out
