GO ?= go

.PHONY: all build test check race cover bench fuzz fuzz-smoke repl-integration experiments tools clean

all: build check

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# check is the full gate: vet plus the whole suite under the race
# detector (the observability layer counts from worker goroutines, so
# race coverage is part of correctness here), then the overload tests
# again explicitly — the admission controller's shed path must hold
# under the race detector — and the cancellation-overhead benchmark,
# which keeps the cost of threading a context through the join loops
# visible on every run.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -run Overload ./internal/httpapi/
	$(GO) test -run xxx -bench BenchmarkCancellationOverhead -benchtime 200ms ./internal/query/

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/xmltree/
	$(GO) test -fuzz=FuzzParseFilter -fuzztime=30s ./internal/filter/
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/store/

# fuzz-smoke is the CI-sized run of the WAL frame decoder fuzzer: the
# decoder parses bytes straight off disk after a crash and straight off
# the network on a replica, so "error, never panic" is load-bearing.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/store/

# repl-integration runs the replication lifecycle and replica-serving
# tests under the race detector: catch-up, restart resume, snapshot
# bootstrap, epoch adoption, byte-identical replica answers, write
# rejection, and staleness gating.
repl-integration:
	$(GO) test -race -count=1 ./internal/repl/
	$(GO) test -race -count=1 -run 'Replica|Replication' ./internal/httpapi/
	$(GO) test -race -count=1 -run 'Repl|CacheInvalidation' ./internal/store/

experiments:
	$(GO) run ./cmd/xfragbench -exp all

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin cover.out
