GO ?= go

.PHONY: all build test check race cover bench fuzz experiments tools clean

all: build check

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# check is the full gate: vet plus the whole suite under the race
# detector (the observability layer counts from worker goroutines, so
# race coverage is part of correctness here).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/xmltree/
	$(GO) test -fuzz=FuzzParseFilter -fuzztime=30s ./internal/filter/

experiments:
	$(GO) run ./cmd/xfragbench -exp all

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin cover.out
