GO ?= go

.PHONY: all build test race cover bench fuzz experiments tools clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/xmltree/
	$(GO) test -fuzz=FuzzParseFilter -fuzztime=30s ./internal/filter/

experiments:
	$(GO) run ./cmd/xfragbench -exp all

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin cover.out
