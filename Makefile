GO ?= go

.PHONY: all build test check race cover bench bench-json bench-compare fuzz fuzz-smoke repl-integration index-integration watch-integration experiments tools clean

all: build check

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

# check is the full gate: vet plus the whole suite under the race
# detector (the observability layer counts from worker goroutines, so
# race coverage is part of correctness here), then the overload tests
# again explicitly — the admission controller's shed path must hold
# under the race detector — the zero-alloc pin for unsampled tracing,
# and the cancellation/trace overhead benchmarks, which keep the cost
# of threading a context (and a span) through the join loops visible
# on every run.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -run Overload ./internal/httpapi/
	$(GO) test -run TestTraceOverheadZeroAlloc -count=1 ./internal/query/
	$(GO) test -run xxx -bench 'BenchmarkCancellationOverhead|BenchmarkTraceOverhead' -benchtime 200ms ./internal/query/

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json runs the kernel benchmarks (plus the join-heaviest
# end-to-end workload, BenchmarkRFSweep, and the trace-overhead pair,
# which gates the cost of the tracing plumbing on the push-down hot
# path) and emits BENCH_core.json (ns/op, allocs/op, B/op, joins/op)
# via cmd/benchjson. BENCHTIME trades precision for CI wall clock; the
# RF sweep is pinned to a single iteration — one op is millions of
# joins, and allocs/op (the hard-gated number) is deterministic at any
# iteration count.
BENCHTIME ?= 1s
bench-json:
	( $(GO) test -run xxx -bench . -benchtime $(BENCHTIME) ./internal/core/ && \
	  $(GO) test -run xxx -bench BenchmarkTraceOverhead -benchtime $(BENCHTIME) ./internal/query/ && \
	  $(GO) test -run xxx -bench BenchmarkPostingSelection -benchtime $(BENCHTIME) ./internal/gindex/ && \
	  $(GO) test -run xxx -bench BenchmarkStandingDelta -benchtime $(BENCHTIME) ./internal/standing/ && \
	  $(GO) test -run xxx -bench BenchmarkPlanChoose -benchtime $(BENCHTIME) ./internal/engine/ && \
	  $(GO) test -run xxx -bench . -benchtime 1x ./internal/bench/ ) \
		| $(GO) run ./cmd/benchjson parse > BENCH_core.json

# bench-compare gates the fresh BENCH_core.json against the committed
# pre-optimization baseline. Only allocs/op is gated hard (it is
# deterministic); ns/op is gated at a coarse threshold that catches
# order-of-magnitude regressions without tripping on shared-runner
# noise.
bench-compare:
	$(GO) run ./cmd/benchjson compare BENCH_baseline.txt BENCH_core.json \
		-gate-allocs 10 -gate-ns 300

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/xmltree/
	$(GO) test -fuzz=FuzzParseFilter -fuzztime=30s ./internal/filter/
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=30s ./internal/store/
	$(GO) test -fuzz=FuzzDecodeSegment -fuzztime=30s ./internal/gindex/

# fuzz-smoke is the CI-sized run of the crash-path decoders: the WAL
# frame decoder and the term-index segment decoder both parse bytes
# straight off disk after a crash (frames also straight off the network
# on a replica), so "error, never panic" is load-bearing for both.
fuzz-smoke:
	$(GO) test -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/store/
	$(GO) test -fuzz=FuzzDecodeSegment -fuzztime=10s ./internal/gindex/

# repl-integration runs the replication lifecycle and replica-serving
# tests under the race detector: catch-up, restart resume, snapshot
# bootstrap, epoch adoption, byte-identical replica answers, write
# rejection, staleness gating, and the traced end-to-end query (one
# trace ID stitched across primary, follower stream, and replica).
repl-integration:
	$(GO) test -race -count=1 ./internal/repl/
	$(GO) test -race -count=1 -run 'Replica|Replication|Trace' ./internal/httpapi/
	$(GO) test -race -count=1 -run 'Repl|CacheInvalidation' ./internal/store/

# index-integration runs the persistent term-index lifecycle tests
# under the race detector: segment codec and shard semantics, cold-start
# posting reuse, crash between flush and merge, corrupt-segment
# wipe-and-rebuild, posting-first answers matching the tree path, and
# replica index maintenance from the replication stream.
index-integration:
	$(GO) test -race -count=1 ./internal/gindex/
	$(GO) test -race -count=1 -run 'Index|ColdStart|PostingFirst' ./internal/store/

# watch-integration runs the standing-query subsystem under the race
# detector: subscription lifecycle, delta/reset semantics, the
# byte-identity soak (materialized view vs from-scratch evaluation),
# slow-consumer backpressure over SSE, the search fast path served
# from materialized views, and the watch-on-replica path fed by the
# replication stream.
watch-integration:
	$(GO) test -race -count=1 ./internal/standing/
	$(GO) test -race -count=1 -run 'Watch|Manifest|FastPath|LegacyAPI' ./internal/httpapi/
	$(GO) test -race -count=1 -run 'FacadeWatch' .

experiments:
	$(GO) run ./cmd/xfragbench -exp all

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin cover.out
