// Optimizer demonstrates the algebraic optimizations of Sections 3–5:
// the four evaluation strategies on one workload, their plan trees
// (Figure 5), the reduction factor RF, and the cost-based strategy
// choice the paper sketches as future work.
//
//	go run ./examples/optimizer
package main

import (
	"errors"
	"fmt"
	"log"

	xfrag "repro"
	"repro/internal/core"
)

func main() {
	doc, err := xfrag.GenerateDocument(xfrag.GeneratorConfig{
		Name: "optimizer-demo.xml", Seed: 99,
		Sections: 6, MeanFanout: 4, Depth: 3, VocabSize: 500,
		Plant: map[string]int{"alpha": 8, "beta": 8},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng := xfrag.NewEngine(doc)
	q, err := xfrag.ParseQuery("alpha beta", "size<=4")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("document: %d nodes; query: %v\n\n", doc.Len(), q)

	fmt.Println("logical plan (Section 2.3):")
	fmt.Print(q.LogicalPlan().Render())
	fmt.Println("\nphysical plan under push-down (Figure 5b):")
	fmt.Print(q.PhysicalPlan(xfrag.PushDown).Render())
	fmt.Println()

	// Run every strategy; the answer sets are identical, the work is not.
	for _, s := range []xfrag.Strategy{xfrag.BruteForce, xfrag.Naive, xfrag.SetReduction, xfrag.PushDown} {
		ans, err := eng.Run(q, xfrag.Options{Strategy: s})
		if errors.Is(err, core.ErrBudgetExceeded) {
			fmt.Printf("%-18v infeasible (budget exceeded) — Section 3.1's point about the naive powerset join\n", s)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		st := ans.Result.Stats
		fmt.Printf("%-18v answers=%-3d candidates=%-6d joins=%-8d %v\n",
			s, st.Answers, st.Candidates, st.Joins, st.Elapsed.Round(1000))
	}
	fmt.Println()

	// Reduction factors of the two seed sets (Section 5): how much ⊖
	// shrinks them decides whether Theorem 1's budgeted iteration is
	// worth the cost of computing it.
	for _, term := range q.Terms {
		seeds := xfrag.NewFragmentSet()
		for _, id := range doc.NodesWithKeyword(term) {
			seeds.Add(xfrag.NodeFragment(doc, id))
		}
		fmt.Printf("RF(σ[keyword=%s]) = %.2f  (|F|=%d, |⊖(F)|=%d)\n",
			term, xfrag.ReductionFactor(seeds), seeds.Len(), xfrag.Reduce(seeds).Len())
	}
	fmt.Println()

	// Auto mode picks for you: with an anti-monotonic filter it is
	// always push-down (Theorem 3 guarantees no loss).
	ans, err := eng.Run(q, xfrag.Options{Auto: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto mode chose: %v (answers=%d)\n", ans.Result.Stats.Strategy, ans.Len())
}
