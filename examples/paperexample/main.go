// Paperexample walks the paper's running example end to end: the
// Figure 1 document, the query Q_{size≤3}{XQuery, optimization}, the
// Table 1 candidate trace, and the contrast with the smallest-subtree
// baseline that motivates the whole model (Section 1).
//
//	go run ./examples/paperexample
package main

import (
	"fmt"
	"log"
	"strings"

	xfrag "repro"
)

func main() {
	doc := xfrag.FigureOneDocument()
	eng := xfrag.NewEngine(doc)

	fmt.Printf("Figure 1 document: %d nodes (n0..n%d)\n\n", doc.Len(), doc.Len()-1)

	// Keyword selections of Section 2.3.
	fmt.Println("seed fragment sets (keyword selections):")
	fmt.Println("  F1 = σ[keyword=XQuery](nodes(D))       =", seedSet(doc, "xquery"))
	fmt.Println("  F2 = σ[keyword=optimization](nodes(D)) =", seedSet(doc, "optimization"))
	fmt.Println()

	// The conventional answer the Introduction criticizes.
	fmt.Println("smallest-subtree (SLCA) answer:", eng.SLCA("XQuery optimization"),
		"→ just the paragraph, not self-contained")
	fmt.Println()

	// The algebraic answer.
	ans, err := eng.Query("XQuery optimization", "size<=3", xfrag.Options{Auto: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("algebraic answer set (%d fragments): ", ans.Len())
	var parts []string
	for _, f := range ans.Fragments() {
		parts = append(parts, f.String())
	}
	fmt.Println(strings.Join(parts, ", "))
	fmt.Println()

	fmt.Println("the fragment of interest (Figure 8b), as presented to a user:")
	fmt.Print(ans.Render())
	fmt.Println()

	// Show why the big fragment through the second section is pruned
	// before it is ever built (Section 4.3).
	f16 := xfrag.NodeFragment(doc, 16)
	f81 := xfrag.NodeFragment(doc, 81)
	wasteful := xfrag.Join(f16, f81)
	fmt.Printf("f16 ⋈ f81 = %v (size %d > 3)\n", wasteful, wasteful.Size())
	fmt.Println("push-down discards this join immediately; every join involving it is never computed")

	st := ans.Result.Stats
	fmt.Printf("\nevaluation: strategy=%v, joins=%d, candidates=%d\n",
		st.Strategy, st.Joins, st.Candidates)
}

func seedSet(doc *xfrag.Document, term string) *xfrag.FragmentSet {
	s := xfrag.NewFragmentSet()
	for _, id := range doc.NodesWithKeyword(term) {
		s.Add(xfrag.NodeFragment(doc, id))
	}
	return s
}
