// Quickstart: parse an XML document, run a keyword query with a size
// filter, and print the answer fragments.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	xfrag "repro"
)

const doc = `
<article>
  <title>Fragment Retrieval in Ten Minutes</title>
  <section>
    <title>Getting started</title>
    <par>Keyword search needs no schema knowledge.</par>
    <par>Answers are connected fragments, not whole documents.</par>
  </section>
  <section>
    <title>Filters</title>
    <par>A size filter keeps answers small and focused.</par>
    <par>Anti-monotonic filters make keyword search fast too.</par>
  </section>
</article>`

func main() {
	eng, err := xfrag.LoadString("quickstart.xml", doc)
	if err != nil {
		log.Fatal(err)
	}

	// Find fragments relating "keyword" and "filters": the terms
	// appear in different sections, so the algebra must stitch
	// fragments together across the tree.
	ans, err := eng.Query("keyword filters", "size<=5", xfrag.Options{Auto: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query %v matched %d fragment(s):\n\n", ans.Query, ans.Len())
	for _, f := range ans.Fragments() {
		fmt.Println(f)
		if err := ans.WriteFragment(os.Stdout, f); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// Compare with the conventional smallest-subtree semantics.
	fmt.Println("SLCA baseline roots:", eng.SLCA("keyword filters"))
}
