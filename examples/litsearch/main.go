// Litsearch simulates the paper's motivating scenario at scale: a
// digital-library-style document-centric corpus (the kind INEX
// evaluates on) searched with keyword queries, where the two query
// terms land in different paragraphs of the same discussion and the
// right answer is the enclosing discussion fragment — something the
// smallest-subtree semantics misses.
//
//	go run ./examples/litsearch
package main

import (
	"fmt"
	"log"

	xfrag "repro"
)

func main() {
	// A ~2000-node synthetic "journal issue" with two planted topic
	// terms scattered through it.
	doc, err := xfrag.GenerateDocument(xfrag.GeneratorConfig{
		Name: "journal-issue.xml", Seed: 2026,
		Sections: 10, MeanFanout: 5, Depth: 3,
		VocabSize: 2000, ZipfS: 1.2, ParLength: 20,
		Plant: map[string]int{"holography": 9, "interference": 11},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng := xfrag.NewEngine(doc)
	fmt.Printf("corpus: %d nodes, %d distinct terms\n\n", doc.Len(), doc.Stats().Distinct())

	// Tight and loose retrieval: the β knob trades focus for recall.
	for _, beta := range []int{3, 6, 10} {
		spec := fmt.Sprintf("size<=%d", beta)
		ans, err := eng.Query("holography interference", spec, xfrag.Options{Auto: true})
		if err != nil {
			log.Fatal(err)
		}
		groups := ans.Groups()
		fmt.Printf("β=%-2d → %2d fragments in %2d groups  (joins=%d, %v)\n",
			beta, ans.Len(), len(groups), ans.Result.Stats.Joins, ans.Result.Stats.Elapsed.Round(1000))
	}
	fmt.Println()

	// Show the best hits for the working β, grouped so overlapping
	// sub-fragments do not swamp the list (Section 5), and ranked by
	// TF·IDF keyword evidence (the §6 complement).
	ans, err := eng.Query("holography interference", "size<=6,height<=2", xfrag.Options{Auto: true})
	if err != nil {
		log.Fatal(err)
	}
	groups := ans.Groups()
	fmt.Printf("query %v → %d target fragments:\n\n", ans.Query, len(groups))
	for i, g := range groups {
		if i == 3 {
			fmt.Printf("... and %d more groups\n", len(groups)-3)
			break
		}
		fmt.Printf("group %d: %v (%d overlapping sub-answers)\n", i+1, g.Target, len(g.Overlapping))
	}
	fmt.Println()

	ranker := xfrag.NewRanker(eng, []string{"holography", "interference"}, xfrag.DefaultRankWeights())
	fmt.Println("top-3 by relevance score:")
	for _, s := range ranker.Top(ans.Result.Answers, 3) {
		fmt.Printf("  %.3f  %v\n", s.Score, s.Fragment)
	}
	fmt.Println()

	// Contrast with the baseline.
	slca := eng.SLCA("holography interference")
	fmt.Printf("SLCA baseline returns %d single roots: %v\n", len(slca), slca)
	fmt.Println("each baseline answer is one node (or its whole subtree); the algebra returns")
	fmt.Println("self-contained fragments sized to the query, with overlaps grouped.")
}
