// Structural shows keyword search combined with structural path
// filters (the integration the paper's related work pursues): confine
// answers to sections, require specific roots, and watch the
// anti-monotonic "within" pattern prune inside the evaluation.
//
//	go run ./examples/structural
package main

import (
	"fmt"
	"log"

	xfrag "repro"
)

func main() {
	eng := xfrag.NewEngine(xfrag.FigureOneDocument())

	runs := []struct {
		filter string
		note   string
	}{
		{"size<=8", "no structural constraint: the cross-section joins appear"},
		{"size<=8,within=//section", "within=//section (anti-monotonic, pushed down): cross-section joins never built"},
		{"size<=8,root=//subsubsection", "root=//subsubsection (residual): keep subsubsection-rooted answers"},
		{"size<=8,contains=//par", "contains=//par (residual): require a paragraph node"},
	}
	for _, r := range runs {
		ans, err := eng.Query("XQuery optimization", r.filter, xfrag.Options{Auto: true})
		if err != nil {
			log.Fatal(err)
		}
		st := ans.Result.Stats
		fmt.Printf("%-38s → %2d answers, %4d joins   (%s)\n",
			r.filter, ans.Len(), st.Joins, r.note)
	}
	fmt.Println()

	// Inspect one structurally confined answer with its witnesses.
	ans, err := eng.Query("XQuery optimization", "size<=3,within=//section", xfrag.Options{Auto: true})
	if err != nil {
		log.Fatal(err)
	}
	target := ans.Targets()[0]
	fmt.Printf("target %v as XML:\n%s\n", target, xfrag.FragmentXML(target))
	fmt.Println("keyword witnesses:")
	for term, nodes := range ans.Witnesses(target) {
		fmt.Printf("  %-14s %v\n", term, nodes)
	}
}
