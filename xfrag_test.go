package xfrag_test

import (
	"fmt"
	"testing"

	xfrag "repro"
)

func TestFacadeRunningExample(t *testing.T) {
	eng := xfrag.NewEngine(xfrag.FigureOneDocument())
	ans, err := eng.Query("XQuery optimization", "size<=3", xfrag.Options{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 4 {
		t.Fatalf("answers = %d, want 4", ans.Len())
	}
	target, err := xfrag.NewFragment(eng.Document(), []xfrag.NodeID{16, 17, 18})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Result.Answers.Contains(target) {
		t.Fatal("target fragment missing")
	}
}

func TestFacadeAlgebraExports(t *testing.T) {
	d := xfrag.FigureOneDocument()
	f17 := xfrag.NodeFragment(d, 17)
	f18 := xfrag.NodeFragment(d, 18)
	j := xfrag.Join(f17, f18)
	if j.Size() != 3 || j.Root() != 16 {
		t.Fatalf("join = %v", j)
	}
	F := xfrag.NewFragmentSet(f17, f18)
	if fp := xfrag.FixedPoint(F); fp.Len() != 3 {
		t.Fatalf("fixed point = %v", fp)
	}
	if rf := xfrag.ReductionFactor(F); rf != 0 {
		t.Fatalf("RF = %v", rf)
	}
}

func TestFacadeFiltersAndQueries(t *testing.T) {
	p := xfrag.And(xfrag.MaxSize(3), xfrag.MaxHeight(2))
	if !p.AntiMonotonic {
		t.Fatal("conjunction should stay anti-monotonic")
	}
	q, err := xfrag.ParseQuery("a b", "size<=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Terms) != 2 || !q.HasPushableFilter() {
		t.Fatalf("query = %v", q)
	}
	if _, err := xfrag.NewQuery(nil); err == nil {
		t.Fatal("empty query must error")
	}
	if _, err := xfrag.ParseFilter("size<=oops"); err == nil {
		t.Fatal("bad filter must error")
	}
}

func TestFacadeGenerator(t *testing.T) {
	d, err := xfrag.GenerateDocument(xfrag.GeneratorConfig{Seed: 3, Sections: 2, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() < 5 {
		t.Fatalf("tiny document: %d", d.Len())
	}
	if _, err := xfrag.ParseDocument("x.xml", "<a><b>hi</b></a>"); err != nil {
		t.Fatal(err)
	}
}

func ExampleLoadString() {
	eng, err := xfrag.LoadString("doc.xml", `
<article>
  <section><title>Trees</title><par>a tree has a root</par></section>
  <section><title>Search</title><par>search trees quickly</par></section>
</article>`)
	if err != nil {
		panic(err)
	}
	ans, err := eng.Query("root search", "size<=5", xfrag.Options{Auto: true})
	if err != nil {
		panic(err)
	}
	for _, f := range ans.Fragments() {
		fmt.Println(f)
	}
	// Output:
	// ⟨n0,n1,n3,n4,n5⟩
	// ⟨n0,n1,n3,n4,n6⟩
}

func ExampleJoin() {
	d := xfrag.FigureOneDocument()
	f17 := xfrag.NodeFragment(d, 17)
	f18 := xfrag.NodeFragment(d, 18)
	fmt.Println(xfrag.Join(f17, f18))
	// Output: ⟨n16,n17,n18⟩
}
