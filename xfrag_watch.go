package xfrag

import (
	"context"

	"repro/internal/standing"
)

// Standing-query (watch) surface: register a query once and receive
// precise add/update/remove deltas as the collection changes, instead
// of re-running the search. The algebra makes the deltas exact: every
// answer fragment lives in one document (Definition 2), so a document
// change re-evaluates only that document.
type (
	// Watcher maintains materialized answer sets for standing queries
	// over a collection and streams their deltas.
	Watcher = standing.Registry
	// Subscription is one registered standing query: its materialized
	// view plus a resumable, sequence-numbered event stream.
	Subscription = standing.Subscription
	// WatchEvent is one numbered delta or reset on a subscription.
	WatchEvent = standing.Event
	// WatchHit is one materialized answer fragment, in the search
	// API's serving shape.
	WatchHit = standing.Hit
)

// Watch errors, re-exported for errors.Is.
var (
	// ErrTooManySubscriptions rejects Watch past the watcher's cap.
	ErrTooManySubscriptions = standing.ErrTooManySubscriptions
	// ErrWatchTooOld reports a resume point that fell off the event
	// ring; re-sync from Subscription.SyntheticReset.
	ErrWatchTooOld = standing.ErrTooOld
	// ErrWatchCanceled reports the subscription was canceled.
	ErrWatchCanceled = standing.ErrCanceled
)

// WatchOption tunes a Watcher.
type WatchOption func(*standing.Options)

// WithMaxSubscriptions caps concurrently registered standing queries
// (default 64).
func WithMaxSubscriptions(n int) WatchOption {
	return func(o *standing.Options) { o.MaxSubscriptions = n }
}

// WithWatchBuffer sets the per-subscription event-ring capacity: how
// many events a disconnected consumer may miss and still resume via
// Subscription.EventsSince without a re-sync (default 256).
func WithWatchBuffer(n int) WatchOption {
	return func(o *standing.Options) { o.Buffer = n }
}

// NewWatcher attaches a standing-query watcher to the collection's
// change feed and starts its delta worker. Close the watcher when done.
//
//	w := xfrag.NewWatcher(coll)
//	defer w.Close()
//	sub, err := xfrag.Watch(w, "xquery optimization", "size<=3")
func NewWatcher(c *Collection, options ...WatchOption) *Watcher {
	opts := standing.Options{Metrics: c.Metrics()}
	for _, o := range options {
		o(&opts)
	}
	w := standing.NewRegistry(c, opts)
	c.SetChangeListener(w.Notify)
	return w
}

// Watch registers a standing query on w, materializing its current
// answer set synchronously. It accepts the same functional options as
// QueryContext (strategy, workers, fragment budget); WithTimeout and
// WithTrace are ignored — a standing query is evaluated by the
// watcher's worker, not under a request deadline.
func Watch(w *Watcher, keywords, filterSpec string, options ...QueryOption) (*Subscription, error) {
	cfg := newQueryConfig(options)
	return w.Register(keywords, filterSpec, cfg.opts, "")
}

// WaitWatch blocks until the subscription has events past since (as
// Subscription.Wait), returning them with the new resume point.
func WaitWatch(ctx context.Context, sub *Subscription, since uint64) ([]WatchEvent, uint64, error) {
	return sub.Wait(ctx, since)
}
