package xfrag_test

// Cross-module integration tests: generator → collection → ranking →
// HTTP API, exercised entirely through the public facade, the way a
// downstream user composes the library.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	xfrag "repro"
)

// TestEndToEndPipeline builds a small corpus, searches it through a
// collection, ranks the hits, serializes the best fragment to XML and
// re-parses it — the full product loop.
func TestEndToEndPipeline(t *testing.T) {
	coll := xfrag.NewCollection()

	// One generated "journal", one hand-written note, plus the
	// paper's document.
	gen, err := xfrag.GenerateDocument(xfrag.GeneratorConfig{
		Name: "journal.xml", Seed: 404, Sections: 5, MeanFanout: 4, Depth: 3,
		VocabSize: 300, Plant: map[string]int{"fragmenting": 6, "retrieval": 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coll.Add(gen); err != nil {
		t.Fatal(err)
	}
	if err := coll.AddXML("note.xml",
		`<note><h>on fragmenting</h><p>retrieval of parts beats whole documents</p></note>`); err != nil {
		t.Fatal(err)
	}
	if err := coll.Add(xfrag.FigureOneDocument()); err != nil {
		t.Fatal(err)
	}

	res, err := coll.Search("fragmenting retrieval", "size<=5", xfrag.Options{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) != 0 {
		t.Fatalf("per-document errors: %v", res.Errors)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}
	docsSeen := map[string]bool{}
	for _, h := range res.Hits {
		docsSeen[h.Document] = true
		// Every hit fragment contains both terms (Definition 8's
		// conjunctive semantics).
		if !h.Fragment.HasKeyword("fragmenting") || !h.Fragment.HasKeyword("retrieval") {
			t.Fatalf("hit %v misses a query term", h.Fragment)
		}
	}
	if !docsSeen["note.xml"] || !docsSeen["journal.xml"] {
		t.Fatalf("expected hits from both matching documents, got %v", docsSeen)
	}
	if docsSeen["figure1.xml"] {
		t.Fatal("figure1 has neither term; it must not match")
	}

	// The best hit round-trips through fragment XML.
	snippet := xfrag.FragmentXML(res.Hits[0].Fragment)
	reparsed, err := xfrag.ParseDocument("hit.xml", snippet)
	if err != nil {
		t.Fatalf("best hit snippet unparseable: %v\n%s", err, snippet)
	}
	if reparsed.Len() != res.Hits[0].Fragment.Size() {
		t.Fatalf("snippet nodes = %d, fragment size = %d", reparsed.Len(), res.Hits[0].Fragment.Size())
	}
}

// TestEndToEndHTTP drives the same pipeline over a live HTTP server.
func TestEndToEndHTTP(t *testing.T) {
	coll := xfrag.NewCollection()
	if err := coll.Add(xfrag.FigureOneDocument()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(xfrag.NewHTTPHandler(coll))
	defer srv.Close()

	// Upload a second document over the wire.
	body := `{"name":"wire.xml","xml":"<doc><p>xquery optimization pairs</p></doc>"}`
	resp, err := http.Post(srv.URL+"/api/v1/docs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}

	// Search across both.
	resp, err = http.Get(srv.URL + "/api/v1/search?q=xquery+optimization&filter=size%3C%3D3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Hits []struct {
			Document string  `json:"document"`
			Size     int     `json:"size"`
			Score    float64 `json:"score"`
		} `json:"hits"`
		Total int `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 5 {
		t.Fatalf("total = %d, want 5 (4 from figure1 + 1 from wire.xml)", out.Total)
	}
	both := map[string]bool{}
	for _, h := range out.Hits {
		both[h.Document] = true
	}
	if !both["figure1.xml"] || !both["wire.xml"] {
		t.Fatalf("expected hits from both documents: %v", both)
	}
}

// TestRankerOnEngine ranks the running example's answers through the
// facade.
func TestRankerOnEngine(t *testing.T) {
	eng := xfrag.NewEngine(xfrag.FigureOneDocument())
	ans, err := eng.Query("xquery optimization", "size<=3", xfrag.Options{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	r := xfrag.NewRanker(eng, []string{"xquery", "optimization"}, xfrag.DefaultRankWeights())
	ranked := r.Rank(ans.Result.Answers)
	if len(ranked) != 4 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Score <= ranked[len(ranked)-1].Score {
		t.Fatal("ranking must discriminate")
	}
}

// TestPlayDocument drives the library over the document-centric play
// markup in testdata — deep structure, structural tag names, long
// text — the data shape the paper targets.
func TestPlayDocument(t *testing.T) {
	eng, err := xfrag.Load("testdata/play.xml")
	if err != nil {
		t.Fatal(err)
	}
	doc := eng.Document()
	if doc.Len() < 50 {
		t.Fatalf("play has %d nodes", doc.Len())
	}

	// "scroll" and "neighbourhood" co-occur only in Act II Scene I:
	// the answer should be a within-scene fragment, not a whole act.
	ans, err := eng.Query("scroll neighbourhood", "size<=6,within=//scene", xfrag.Options{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() == 0 {
		t.Fatal("expected answers in the play")
	}
	for _, f := range ans.Fragments() {
		if doc.Tag(f.Root()) == "play" || doc.Tag(f.Root()) == "act" {
			t.Fatalf("answer %v escaped the scene level (root <%s>)", f, doc.Tag(f.Root()))
		}
	}

	// The SLCA baseline returns a single node for the same query.
	slca := eng.SLCA("scroll neighbourhood")
	if len(slca) == 0 {
		t.Fatal("baseline found nothing")
	}

	// Fragment XML of the best target is a playable snippet.
	target := ans.Targets()[0]
	snippet := xfrag.FragmentXML(target)
	if _, err := xfrag.ParseDocument("snippet.xml", snippet); err != nil {
		t.Fatalf("snippet unparseable: %v\n%s", err, snippet)
	}
}

// TestPlaySpeakerSearch combines keyword and structural constraints:
// lines spoken in speeches, located via //speech paths.
func TestPlaySpeakerSearch(t *testing.T) {
	eng, err := xfrag.Load("testdata/play.xml")
	if err != nil {
		t.Fatal(err)
	}
	// Each answer must be confined to a single speech.
	ans, err := eng.Query("isabella wandering", "within=//speech,size<=4", xfrag.Options{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	doc := eng.Document()
	for _, f := range ans.Fragments() {
		for _, id := range f.IDs() {
			ok := false
			for v := id; v != -1; v = doc.Parent(v) {
				if doc.Tag(v) == "speech" {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("answer node %v not inside a speech", id)
			}
		}
	}
}
