package xfrag

// One benchmark per experiment in DESIGN.md's per-experiment index.
// Run with:
//
//	go test -bench=. -benchmem
//
// Correctness of each artifact is asserted by the unit tests; these
// benchmarks measure the cost of regenerating it and of the projected
// performance study. EXPERIMENTS.md records representative output.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/docgen"
	"repro/internal/filter"
	"repro/internal/index"
	"repro/internal/lca"
	"repro/internal/query"
	"repro/internal/relstore"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/xmltree"
)

// BenchmarkTable1 regenerates Table 1: the full candidate trace of
// F1 ⋈* F2 for the running query under size ≤ 3.
func BenchmarkTable1(b *testing.B) {
	F1, F2, _ := bench.Figure1Seeds()
	pred := func(f core.Fragment) bool { return f.Size() <= 3 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := core.PowersetJoinTrace(F1, F2, pred)
		if err != nil || len(rows) != 11 {
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// BenchmarkFig1Parse measures building the Figure 1 document replica
// (tree construction, keyword extraction, LCA table).
func BenchmarkFig1Parse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := docgen.FigureOne()
		if d.Len() != 82 {
			b.Fatal("bad document")
		}
	}
}

// BenchmarkFig2Splits runs the keyword-split variations of Figure 2.
func BenchmarkFig2Splits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Figure2()
		if !strings.Contains(out, "algebra answers") {
			b.Fatal("unexpected output")
		}
	}
}

// BenchmarkFig3Joins measures the Figure 3 join examples: one
// fragment join, the pairwise join and the powerset join.
func BenchmarkFig3Joins(b *testing.B) {
	d := docgen.FigureThree()
	f1 := core.MustFragment(d, 4, 5)
	f2 := core.MustFragment(d, 7, 9)
	F1 := core.NewSet(f1, f2)
	F2 := core.NewSet(core.MustFragment(d, 6, 7), core.MustFragment(d, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Join(f1, f2)
		_ = core.PairwiseJoin(F1, F2)
		if _, err := core.PowersetJoin(F1, F2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Reduce measures the Figure 4 set reduction and the
// budgeted fixed point it licenses.
func BenchmarkFig4Reduce(b *testing.B) {
	d := docgen.FigureFour()
	F := core.NewSet(
		core.MustFragment(d, 1), core.MustFragment(d, 3), core.MustFragment(d, 5),
		core.MustFragment(d, 6), core.MustFragment(d, 7),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.Reduce(F).Len() != 3 {
			b.Fatal("wrong reduction")
		}
		_ = core.FixedPoint(F)
	}
}

// BenchmarkFig5Plans measures plan construction and rendering for the
// Figure 5 evaluation trees.
func BenchmarkFig5Plans(b *testing.B) {
	q := query.MustNew([]string{"k1", "k2"}, filter.MaxSize(3))
	for i := 0; i < b.N; i++ {
		if q.PhysicalPlan(cost.PushDown).Render() == "" {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkFig6Filters measures the anti-monotonic filter battery of
// Figure 6 over the running example's fragments.
func BenchmarkFig6Filters(b *testing.B) {
	d := docgen.FigureOne()
	frags := []core.Fragment{
		core.MustFragment(d, 16, 17, 18),
		core.MustFragment(d, 16, 17),
		core.MustFragment(d, 0, 1, 14, 16, 17, 79, 80, 81),
	}
	filters := []filter.Filter{filter.MaxSize(3), filter.MaxHeight(2), filter.MaxWidth(4)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range frags {
			for _, p := range filters {
				_ = p.Apply(f)
			}
		}
	}
}

// BenchmarkFig7EqualDepth measures the non-anti-monotonic equal-depth
// filter of Figure 7.
func BenchmarkFig7EqualDepth(b *testing.B) {
	d := docgen.FigureOne()
	p := filter.EqualDepth("xquery", "optimization")
	f := core.MustFragment(d, 16, 17, 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Apply(f)
	}
}

// BenchmarkFig8Query runs the full running example end to end
// (index lookup → push-down evaluation → answer set).
func BenchmarkFig8Query(b *testing.B) {
	x := index.New(docgen.FigureOne())
	q := query.MustNew([]string{"xquery", "optimization"}, filter.MaxSize(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := query.Evaluate(x, q, query.Options{Strategy: cost.PushDown})
		if err != nil || res.Answers.Len() != 4 {
			b.Fatalf("answers=%v err=%v", res.Answers, err)
		}
	}
}

// BenchmarkThm1FixedPoint compares the Theorem 1 budgeted fixed point
// with the checking-based iteration on the Figure 4 set.
func BenchmarkThm1FixedPoint(b *testing.B) {
	d := docgen.FigureFour()
	F := core.NewSet(
		core.MustFragment(d, 1), core.MustFragment(d, 3), core.MustFragment(d, 5),
		core.MustFragment(d, 6), core.MustFragment(d, 7),
	)
	b.Run("budgeted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.FixedPoint(F)
		}
	})
	b.Run("checking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.FixedPointNaive(F)
		}
	})
}

// BenchmarkThm2Equivalence measures both sides of Theorem 2 on the
// running example's seed sets.
func BenchmarkThm2Equivalence(b *testing.B) {
	F1, F2, _ := bench.Figure1Seeds()
	b.Run("literal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.PowersetJoin(F1, F2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fixed-point", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.PowersetJoinFixedPoint(F1, F2)
		}
	})
}

// BenchmarkThm3PushDown measures both sides of the Theorem 3
// equivalence σ(F1⋈F2) = σ(σF1⋈σF2) on planted synthetic seeds.
func BenchmarkThm3PushDown(b *testing.B) {
	d, err := docgen.Generate(docgen.Config{
		Seed: 5, Sections: 5, MeanFanout: 4, Depth: 3, VocabSize: 200,
		Plant: map[string]int{"ta": 10, "tb": 10},
	})
	if err != nil {
		b.Fatal(err)
	}
	F1 := core.NodeFragments(d, d.NodesWithKeyword("ta"))
	F2 := core.NodeFragments(d, d.NodesWithKeyword("tb"))
	pred := func(f core.Fragment) bool { return f.Size() <= 4 }
	b.Run("select-last", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.PairwiseJoin(F1, F2).Select(pred)
		}
	})
	b.Run("pushed-down", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.PairwiseJoinFiltered(F1.Select(pred), F2.Select(pred), pred)
		}
	})
}

// BenchmarkStrategies is the perf-strategies experiment: every
// strategy across document sizes and keyword frequencies (β = 4).
func BenchmarkStrategies(b *testing.B) {
	for _, sections := range []int{2, 6} {
		for _, freq := range []int{4, 8} {
			d, err := docgen.Generate(docgen.Config{
				Seed: 7, Sections: sections, MeanFanout: 4, Depth: 3, VocabSize: 400,
				Plant: map[string]int{"querytermone": freq, "querytermtwo": freq},
			})
			if err != nil {
				b.Fatal(err)
			}
			x := index.New(d)
			q := query.MustNew([]string{"querytermone", "querytermtwo"}, filter.MaxSize(4))
			for _, s := range []cost.Strategy{cost.BruteForce, cost.Naive, cost.SetReduction, cost.PushDown} {
				name := fmt.Sprintf("nodes=%d/freq=%d/%v", d.Len(), freq, s)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := query.Evaluate(x, q, query.Options{Strategy: s, MaxFragments: 100000}); err != nil {
							b.Skipf("infeasible: %v", err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkReductionFactor is the perf-rf experiment: cost of ⊖ plus
// the budgeted iteration vs. the checking iteration at both RF
// extremes.
func BenchmarkReductionFactor(b *testing.B) {
	mkChain := func(depth int) *core.Set {
		bb := xmltree.NewBuilder("chain", "root", "")
		parent := xmltree.NodeID(0)
		F := core.NewSet()
		for i := 0; i < depth; i++ {
			parent = bb.AddNode(parent, "lvl", "")
		}
		d := bb.Build()
		for id := xmltree.NodeID(0); int(id) < d.Len(); id++ {
			F.Add(core.NodeFragment(d, id))
		}
		return F
	}
	mkStar := func(leaves int) *core.Set {
		bb := xmltree.NewBuilder("star", "root", "")
		for i := 0; i < leaves; i++ {
			bb.AddNode(0, "leaf", "")
		}
		d := bb.Build()
		F := core.NewSet()
		for id := xmltree.NodeID(1); int(id) < d.Len(); id++ {
			F.Add(core.NodeFragment(d, id))
		}
		return F
	}
	sets := map[string]*core.Set{
		"highRF-chain12": mkChain(11),
		"zeroRF-star12":  mkStar(12),
	}
	for name, F := range sets {
		b.Run(name+"/set-reduction", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.FixedPoint(F)
			}
		})
		b.Run(name+"/checking", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.FixedPointNaive(F)
			}
		})
	}
}

// BenchmarkSLCABaseline is the perf-slca experiment: baseline SLCA
// vs. the push-down algebra on the same synthetic workload.
func BenchmarkSLCABaseline(b *testing.B) {
	d, err := docgen.Generate(docgen.Config{
		Seed: 7, Sections: 6, MeanFanout: 4, Depth: 3, VocabSize: 300,
		Plant: map[string]int{"querytermone": 8, "querytermtwo": 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	x := index.New(d)
	terms := []string{"querytermone", "querytermtwo"}
	q := query.MustNew(terms, filter.MaxSize(5))
	b.Run("slca", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = lca.SLCA(x, terms)
		}
	})
	b.Run("elca", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = lca.ELCA(x, terms)
		}
	})
	b.Run("algebra-pushdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.Evaluate(x, q, query.Options{Strategy: cost.PushDown}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRelStore is the perf-rel experiment: native vs.
// relational-substrate execution of the same query.
func BenchmarkRelStore(b *testing.B) {
	d, err := docgen.Generate(docgen.Config{
		Seed: 7, Sections: 6, MeanFanout: 4, Depth: 3, VocabSize: 300,
		Plant: map[string]int{"querytermone": 8, "querytermtwo": 8},
	})
	if err != nil {
		b.Fatal(err)
	}
	x := index.New(d)
	q := query.MustNew([]string{"querytermone", "querytermtwo"}, filter.MaxSize(4))
	store := relstore.FromDocument(d)
	ex := relstore.NewExecutor(store)
	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.Evaluate(x, q, query.Options{Strategy: cost.PushDown}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("relational", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ex.Evaluate(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIndexBuild measures inverted-index construction, the only
// per-document preprocessing the system performs.
func BenchmarkIndexBuild(b *testing.B) {
	d, err := docgen.Generate(docgen.Config{Seed: 7, Sections: 6, MeanFanout: 4, Depth: 3, VocabSize: 300})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = index.New(d)
	}
}

// BenchmarkJoin measures the primitive fragment join at several
// distances in a large document.
func BenchmarkJoin(b *testing.B) {
	d, err := docgen.Generate(docgen.Config{Seed: 7, Sections: 10, MeanFanout: 5, Depth: 3, VocabSize: 100})
	if err != nil {
		b.Fatal(err)
	}
	near1 := core.NodeFragment(d, xmltree.NodeID(d.Len()/2))
	near2 := core.NodeFragment(d, xmltree.NodeID(d.Len()/2+1))
	far1 := core.NodeFragment(d, 1)
	far2 := core.NodeFragment(d, xmltree.NodeID(d.Len()-1))
	b.Run("near", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.Join(near1, near2)
		}
	})
	b.Run("far", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.Join(far1, far2)
		}
	})
}

// BenchmarkScale is the perf-scale experiment: push-down query cost
// as the document grows (the index localizes seeds; latency should
// track keyword frequency, not size).
func BenchmarkScale(b *testing.B) {
	for _, sections := range []int{3, 12, 24} {
		d, err := docgen.Generate(docgen.Config{
			Seed: 7, Sections: sections, MeanFanout: 5, Depth: 3, VocabSize: 1000,
			Plant: map[string]int{"querytermone": 8, "querytermtwo": 8},
		})
		if err != nil {
			b.Fatal(err)
		}
		x := index.New(d)
		q := query.MustNew([]string{"querytermone", "querytermtwo"}, filter.MaxSize(5))
		b.Run(fmt.Sprintf("nodes=%d", d.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := query.Evaluate(x, q, query.Options{Strategy: cost.PushDown}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshot measures persistence round trips.
func BenchmarkSnapshot(b *testing.B) {
	d, err := docgen.Generate(docgen.Config{Seed: 7, Sections: 12, MeanFanout: 5, Depth: 3, VocabSize: 500})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := snapshot.WriteDocument(&buf, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := snapshot.WriteDocument(&buf, d); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := snapshot.ReadDocuments(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEffectiveness is the perf-effect experiment: evaluation of
// algebra and baselines against planted gold fragments.
func BenchmarkEffectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Effectiveness(7)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkCompactIndex compares raw and delta-varint posting lookups
// and reports the space ratio.
func BenchmarkCompactIndex(b *testing.B) {
	d, err := docgen.Generate(docgen.Config{Seed: 7, Sections: 12, MeanFanout: 5, Depth: 3, VocabSize: 800})
	if err != nil {
		b.Fatal(err)
	}
	x := index.New(d)
	c := index.Compact(x)
	term := x.Terms()[len(x.Terms())/2]
	b.Logf("postings: raw %d B, compact %d B (ratio %.2f)",
		c.RawBytes(), c.BlobBytes(), float64(c.BlobBytes())/float64(c.RawBytes()))
	b.Run("raw-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = x.LookupExact(term)
		}
	})
	b.Run("compact-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c.LookupExact(term)
		}
	})
}

// BenchmarkCollectionSearch measures multi-document fan-out with
// ranking and merging (sequential per-document work dominates; the
// fan-out is concurrent).
func BenchmarkCollectionSearch(b *testing.B) {
	c := collection.New()
	if err := c.Add(docgen.FigureOne()); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d, err := docgen.Generate(docgen.Config{
			Name: fmt.Sprintf("doc%d.xml", i), Seed: int64(i), Sections: 4,
			MeanFanout: 4, Depth: 3, VocabSize: 300,
			Plant: map[string]int{"xquery": 4, "optimization": 4},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Add(d); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Search("xquery optimization", "size<=4", query.Options{Strategy: cost.PushDown})
		if err != nil || len(res.Hits) == 0 {
			b.Fatalf("hits=%d err=%v", len(res.Hits), err)
		}
	}
}

// storeBenchDoc mirrors the store tests' synthetic corpus: small
// document-centric trees with rotating terms.
func storeBenchDoc(i int) (string, string) {
	term := "alpha"
	if i%3 == 0 {
		term = "gamma"
	}
	return fmt.Sprintf("bench-doc-%05d", i), fmt.Sprintf(
		"<article><title>%s retrieval</title><sec>xml %s fragment %d</sec><sec>filler text %d</sec></article>",
		term, term, i, i)
}

// BenchmarkStoreIngest measures documents/sec through the async
// ingest pipeline (enqueue → parse → WAL append → shard index) at
// 1, 4 and 8 workers, durability on (WAL in a temp dir, no
// per-append fsync — the default production configuration).
func BenchmarkStoreIngest(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			st, err := store.Open(store.Options{
				Dir:           b.TempDir(),
				Shards:        8,
				IngestWorkers: workers,
				QueueSize:     b.N + 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name, xml := storeBenchDoc(i)
				if _, err := st.Enqueue(name, xml); err != nil {
					b.Fatal(err)
				}
			}
			// Close drains the queue: the timed region covers the full
			// pipeline, not just enqueue.
			if err := st.Close(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if st.Len() != b.N {
				b.Fatalf("ingested %d docs, want %d", st.Len(), b.N)
			}
		})
	}
}

// BenchmarkShardedSearch compares scatter-gather search on 1 vs. 8
// shards at 100 and 1000 documents (top-10 heap merge in both).
func BenchmarkShardedSearch(b *testing.B) {
	for _, docs := range []int{100, 1000} {
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("docs=%d/shards=%d", docs, shards), func(b *testing.B) {
				st, err := store.Open(store.Options{Shards: shards})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close(context.Background())
				for i := 0; i < docs; i++ {
					name, xml := storeBenchDoc(i)
					if err := st.AddXML(name, xml); err != nil {
						b.Fatal(err)
					}
				}
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := st.Search(ctx, "alpha retrieval", "", query.Options{Auto: true}, 10)
					if err != nil {
						b.Fatal(err)
					}
					if res.Total == 0 {
						b.Fatal("no hits")
					}
				}
			})
		}
	}
}
